/**
 * @file
 * TieredFeatureStore — the out-of-core tier below the existing caches.
 *
 * Feature residency forms a hierarchy:
 *
 *       GPU cache          match::StaticFeatureCache /
 *          |                PartitionedFeatureCache (hot rows)
 *       host DRAM          the hottest host_mem share of all rows
 *          |
 *       block storage      everything else, on a modelled NVMe/SSD
 *                          drive (sim::StorageLink) in block_bytes
 *                          blocks laid out by store::FeatureLayout
 *
 * A gathered row that hits the GPU cache costs nothing here; a row
 * resident in host DRAM pays only the usual PCIe path (modelled
 * elsewhere); a row on neither tier maps to its storage block and goes
 * through the IoScheduler (coalescing + staging + bounded in-flight
 * windows). The LookaheadPrefetcher lets future batches' blocks be
 * read as overlapped time, so the demand stall shrinks to the
 * uncovered tail.
 *
 * Accounting only: the store never touches gathered feature bytes —
 * losses, panels, and fingerprints are bit-identical with storage on
 * or off. Everything is virtual-clock deterministic and single-writer.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/feature_store.h"
#include "graph/partition.h"
#include "match/feature_cache.h"
#include "sim/storage_link.h"
#include "store/feature_layout.h"
#include "store/io_scheduler.h"
#include "store/prefetcher.h"

namespace fastgl {
namespace store {

/** Which modelled drive backs the cold tier. */
enum class StorageKind
{
    kNone, ///< Everything fits in host DRAM (legacy behaviour).
    kNvme,
    kSsd,
};

/** Printable kind name ("none", "nvme", "ssd"). */
const char *storage_kind_name(StorageKind kind);

/** Everything configurable about the out-of-core tier. */
struct TieredStoreOptions
{
    StorageKind storage = StorageKind::kNone;
    /** Share of all feature rows resident in host DRAM (hottest
     *  first along the hotness ranking); 1.0 = fully in memory. */
    double host_mem_fraction = 1.0;
    /** >= 0: host-resident rows directly, overriding the fraction. */
    int64_t host_mem_rows = -1;
    /** Bytes per storage block. */
    uint64_t block_bytes = 16384;
    /** In-flight reads per window (<= 0: the drive queue depth). */
    int max_inflight = 0;
    /** Batches of sampler lookahead the prefetcher consumes; 0
     *  disables prefetching (demand reads only). */
    int prefetch_depth = 2;
    /** Lay feature rows out partition-major in BFS order
     *  (store::partition_ordered_layout) instead of node-ID order. */
    bool relayout = false;
    /** Partition count for the relayout when the caller has no
     *  partitioning of its own (e.g. single-GPU training). */
    int relayout_parts = 16;
    /** Staging-buffer capacity in blocks. */
    int64_t staging_blocks = 4096;
};

/** Per-run counters of one TieredFeatureStore. */
struct StoreStats
{
    int64_t lookup_rows = 0;    ///< Rows classified by charge calls.
    int64_t gpu_cache_rows = 0; ///< Skipped: resident on the device.
    int64_t host_rows = 0;      ///< Served from host DRAM.
    int64_t storage_rows = 0;   ///< Needed a storage block.
    /** Distinct blocks demanded by charge calls (after coalescing). */
    int64_t demand_blocks = 0;
    /** Demanded blocks found already staged (no stall). */
    int64_t demand_staged = 0;
    /** Demanded blocks read from the drive (stall). */
    int64_t demand_fetched = 0;
    /** Of demand_staged, blocks the prefetcher put there. */
    int64_t prefetch_hits = 0;
    double stall_seconds = 0.0;  ///< Demand-read time (gather stalls).
    double hidden_seconds = 0.0; ///< Prefetch-read time (overlapped).
    IoStats io;                  ///< Raw IoScheduler counters.
    PrefetchStats prefetch;      ///< Raw prefetcher counters.

    /** Fraction of demanded blocks that were already staged. */
    double
    block_hit_rate() const
    {
        return demand_blocks
                   ? static_cast<double>(demand_staged) /
                         static_cast<double>(demand_blocks)
                   : 0.0;
    }
};

/** Modelled GPU-cache / host-DRAM / block-storage hierarchy. */
class TieredFeatureStore
{
  public:
    /**
     * @param features  the feature matrix being tiered (row size only)
     * @param graph     graph behind the layout walk (relayout only)
     * @param ranking   hotness order, hottest first — the host-DRAM
     *                  prefix is taken from here (deliberately
     *                  layout-independent, so relayout changes block
     *                  composition and nothing else)
     * @param parts     partitioning for the relayout; nullptr lets the
     *                  store partition with opts.relayout_parts
     * @param gpu_cache device-resident rows to skip; may be nullptr
     * @param opts      see TieredStoreOptions
     */
    TieredFeatureStore(const graph::FeatureStore &features,
                       const graph::CsrGraph &graph,
                       const std::vector<graph::NodeId> &ranking,
                       const graph::Partitioning *parts,
                       const match::StaticFeatureCache *gpu_cache,
                       TieredStoreOptions opts);

    /** True when some rows actually live on storage. */
    bool
    active() const
    {
        return opts_.storage != StorageKind::kNone &&
               host_rows_ < num_nodes_;
    }

    /**
     * Reset to the start-of-run state (empty staging buffer and
     * prefetch window, zero statistics). Call once per epoch / per
     * serve() so identical runs charge identical seconds.
     */
    void begin_run();

    /**
     * Charge the demand storage reads of the batch being gathered NOW.
     * @return the stall seconds (reads not covered by staging).
     */
    double charge_batch(std::span<const graph::NodeId> nodes);

    /**
     * Charge storage reads of rows already known to miss every cache
     * tier (the multi-GPU accounting path's miss_nodes): like
     * charge_batch but without the GPU-cache skip.
     */
    double charge_miss_rows(std::span<const graph::NodeId> nodes);

    /**
     * Register FUTURE batch @p batch_id's node set with the
     * prefetcher and read its uncovered blocks as overlapped time.
     * @return the hidden (overlapped) read seconds.
     */
    double stage_future_batch(int64_t batch_id,
                              std::span<const graph::NodeId> nodes);

    /** Retire @p batch_id from the prefetch window (no-op when the
     *  batch was never staged). */
    void complete_batch(int64_t batch_id);

    /** True when @p node's row is host-DRAM resident. */
    bool
    host_resident(graph::NodeId node) const
    {
        return host_resident_[static_cast<size_t>(node)];
    }

    /** Storage block holding @p node's row under the active layout. */
    int64_t
    block_of(graph::NodeId node) const
    {
        return layout_.slot_of[static_cast<size_t>(node)] /
               rows_per_block_;
    }

    StoreStats stats() const;
    const FeatureLayout &layout() const { return layout_; }
    const sim::StorageLink &link() const { return *link_; }
    const TieredStoreOptions &options() const { return opts_; }
    int64_t host_rows() const { return host_rows_; }
    int64_t rows_per_block() const { return rows_per_block_; }
    int64_t num_blocks() const { return num_blocks_; }

  private:
    double charge_rows(std::span<const graph::NodeId> nodes,
                       bool check_gpu_cache);

    graph::NodeId num_nodes_ = 0;
    TieredStoreOptions opts_;
    const match::StaticFeatureCache *gpu_cache_ = nullptr;
    /** Owned partitioning when relayout had to build its own. */
    graph::Partitioning own_parts_;
    FeatureLayout layout_;
    std::vector<bool> host_resident_;
    int64_t host_rows_ = 0;
    int64_t rows_per_block_ = 1;
    int64_t num_blocks_ = 0;
    std::unique_ptr<sim::StorageLink> link_;
    std::unique_ptr<IoScheduler> scheduler_;
    std::unique_ptr<LookaheadPrefetcher> prefetcher_;
    /** Per-call block scratch. */
    std::vector<int64_t> blocks_;
    StoreStats tallies_;
};

} // namespace store
} // namespace fastgl
