/**
 * @file
 * Epoch-scoped bump allocator for hot-path scratch memory.
 *
 * The samplers and the Match set algebra need large, short-lived buffers
 * on every call (pending-block edge lists, visit-count arrays, overlap
 * matrices). Allocating them from the general-purpose heap each call
 * costs mmap/munmap churn and page faults at exactly the frequency the
 * overlapped pipeline runs its stages. ArenaAllocator replaces that with
 * pointer bumps over memory that is allocated once and reused forever:
 *
 *   - allocate() bumps a cursor inside a chain of blocks, growing the
 *     chain geometrically when a request does not fit;
 *   - set_watermark() freezes everything allocated so far as persistent
 *     (e.g. a sampler's flat visit-count array sized to the graph);
 *   - reset() rewinds the cursor to the watermark, instantly reclaiming
 *     all per-call scratch without touching the persistent prefix. When
 *     the scratch overflowed into multiple blocks, reset() coalesces the
 *     overflow into one block so steady state is a single bump region.
 *
 * Not thread safe: each consumer (sampler instance, worker thread) owns
 * its own arena, matching the "per-thread sampler clone" design of
 * core::AsyncPipeline.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace fastgl {
namespace util {

/** Bump allocator with watermark reset; see file comment. */
class ArenaAllocator
{
  public:
    /** @param initial_bytes Capacity of the first block (min 64). */
    explicit ArenaAllocator(size_t initial_bytes = 1 << 16)
    {
        add_block(initial_bytes < 64 ? 64 : initial_bytes);
    }

    ArenaAllocator(const ArenaAllocator &) = delete;
    ArenaAllocator &operator=(const ArenaAllocator &) = delete;

    /**
     * Allocate @p bytes aligned to @p align (a power of two). Never
     * returns nullptr; grows the block chain on demand. A zero-byte
     * request yields a valid, unique-per-call pointer.
     */
    void *
    allocate(size_t bytes, size_t align = alignof(std::max_align_t))
    {
        // Align the address, not the offset: block bases only carry the
        // default operator-new alignment, so over-aligned requests need
        // the base folded in.
        Block &blk = blocks_[current_];
        const auto base = reinterpret_cast<uintptr_t>(blk.data.get());
        const size_t aligned = align_up(base + offset_, align) - base;
        if (aligned + bytes <= blk.capacity) {
            offset_ = aligned + bytes;
            return blk.data.get() + aligned;
        }
        return allocate_slow(bytes, align);
    }

    /**
     * Allocate an uninitialised array of @p count trivially-destructible
     * elements (the arena never runs destructors).
     */
    template <typename T>
    T *
    alloc_array(size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is reclaimed without destructors");
        return static_cast<T *>(
            allocate(count * sizeof(T), alignof(T)));
    }

    /** alloc_array + memset to zero. */
    template <typename T>
    T *
    alloc_zeroed(size_t count)
    {
        T *ptr = alloc_array<T>(count);
        std::memset(static_cast<void *>(ptr), 0, count * sizeof(T));
        return ptr;
    }

    /**
     * Freeze the current cursor as the reset floor. Everything allocated
     * before this call survives reset(); everything after is scratch.
     */
    void
    set_watermark()
    {
        wm_block_ = current_;
        wm_offset_ = offset_;
    }

    /**
     * Rewind to the watermark (block 0, offset 0 when none was set).
     * Existing blocks are kept, so steady-state epochs never touch the
     * heap; when scratch spilled past the watermark block, the overflow
     * blocks are coalesced into one sized to the spill high-water mark.
     */
    void
    reset()
    {
        if (current_ > wm_block_ + 1) {
            // Fragmented overflow: replace everything past the watermark
            // block with a single block big enough for the whole spill,
            // so the next epoch bumps through one contiguous region.
            size_t spill = 0;
            for (size_t b = wm_block_ + 1; b < blocks_.size(); ++b)
                spill += blocks_[b].capacity;
            blocks_.resize(wm_block_ + 1);
            add_block(spill);
        }
        current_ = wm_block_;
        offset_ = wm_offset_;
    }

    /** Bytes handed out since the last reset (excludes padding waste). */
    size_t
    bytes_in_use() const
    {
        size_t used = offset_;
        for (size_t b = 0; b < current_; ++b)
            used += blocks_[b].capacity;
        return used;
    }

    /** Total bytes reserved from the heap across all blocks. */
    size_t
    capacity() const
    {
        size_t total = 0;
        for (const Block &blk : blocks_)
            total += blk.capacity;
        return total;
    }

    /** Number of blocks in the chain (1 in steady state). */
    size_t block_count() const { return blocks_.size(); }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        size_t capacity = 0;
    };

    static uintptr_t
    align_up(uintptr_t value, size_t align)
    {
        return (value + align - 1) & ~(uintptr_t(align) - 1);
    }

    void
    add_block(size_t capacity)
    {
        Block blk;
        blk.capacity = capacity;
        // Uninitialised on purpose: allocate() makes no zeroing promise
        // (alloc_zeroed exists for that), and value-initialising here
        // would touch every page of e.g. a 32 MB feature panel before
        // the first real write.
        blk.data = std::make_unique_for_overwrite<std::byte[]>(capacity);
        blocks_.push_back(std::move(blk));
    }

    void *
    allocate_slow(size_t bytes, size_t align)
    {
        // Advance to the next block that fits, growing geometrically
        // from the largest existing block so chains stay short.
        for (;;) {
            if (current_ + 1 >= blocks_.size()) {
                size_t grow = blocks_.back().capacity * 2;
                if (grow < bytes + align)
                    grow = bytes + align;
                add_block(grow);
            }
            ++current_;
            offset_ = 0;
            Block &blk = blocks_[current_];
            const auto base =
                reinterpret_cast<uintptr_t>(blk.data.get());
            const size_t aligned = align_up(base, align) - base;
            if (aligned + bytes <= blk.capacity) {
                offset_ = aligned + bytes;
                return blk.data.get() + aligned;
            }
        }
    }

    std::vector<Block> blocks_;
    size_t current_ = 0;   ///< Index of the block the cursor is in.
    size_t offset_ = 0;    ///< Bump offset inside blocks_[current_].
    size_t wm_block_ = 0;  ///< Watermark block index.
    size_t wm_offset_ = 0; ///< Watermark offset.
};

} // namespace util
} // namespace fastgl
