/**
 * @file
 * Dense bitmap over an integer ID range, used as the third leg of the
 * adaptive set-intersection policy (see docs/hotpath_perf.md): when one
 * sorted node set is intersected against many others, loading it into a
 * bitmap once turns each intersection into O(|other|) probes instead of
 * an O(|a| + |b|) merge.
 *
 * The bitmap supports "touched reset": a consumer that set the bits of a
 * sorted ID list can unset exactly those bits afterwards, returning the
 * bitmap to all-zero in O(|list|) instead of O(universe / 64). That is
 * what lets one thread-local bitmap serve every row of a match-degree
 * matrix without per-row memsets.
 */
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fastgl {
namespace util {

/** Fixed-universe bitset with cheap bulk load/unload of sorted IDs. */
class Bitmap
{
  public:
    Bitmap() = default;

    /** Construct with @p num_bits bits, all zero. */
    explicit Bitmap(size_t num_bits) { resize(num_bits); }

    /**
     * Ensure capacity for @p num_bits bits. Grows only (new words are
     * zeroed); never shrinks, so a reused bitmap keeps its allocation.
     */
    void
    resize(size_t num_bits)
    {
        const size_t words = (num_bits + 63) / 64;
        if (words > words_.size())
            words_.resize(words, 0);
        if (num_bits > num_bits_)
            num_bits_ = num_bits;
    }

    size_t size() const { return num_bits_; }

    void
    set(size_t bit)
    {
        words_[bit >> 6] |= (uint64_t(1) << (bit & 63));
    }

    void
    unset(size_t bit)
    {
        words_[bit >> 6] &= ~(uint64_t(1) << (bit & 63));
    }

    bool
    test(size_t bit) const
    {
        return (words_[bit >> 6] >> (bit & 63)) & 1;
    }

    /** Zero every word (O(size/64)). */
    void
    clear()
    {
        std::fill(words_.begin(), words_.end(), uint64_t(0));
    }

    /** Number of set bits. */
    int64_t
    count() const
    {
        int64_t total = 0;
        for (uint64_t w : words_)
            total += std::popcount(w);
        return total;
    }

    /**
     * Set bit (id - base) for every id in @p ids with
     * base <= id < base + size(). IDs outside the range are ignored.
     */
    template <typename Id>
    void
    load(std::span<const Id> ids, Id base)
    {
        for (Id id : ids) {
            const auto rel = static_cast<uint64_t>(id - base);
            if (id >= base && rel < num_bits_)
                set(static_cast<size_t>(rel));
        }
    }

    /** Undo a previous load() of the same @p ids / @p base. */
    template <typename Id>
    void
    unload(std::span<const Id> ids, Id base)
    {
        for (Id id : ids) {
            const auto rel = static_cast<uint64_t>(id - base);
            if (id >= base && rel < num_bits_)
                unset(static_cast<size_t>(rel));
        }
    }

    /**
     * Count how many ids in sorted @p ids have their (id - base) bit set.
     * Stops early once ids exceed the universe (ids must be ascending).
     */
    template <typename Id>
    int64_t
    probe_count_sorted(std::span<const Id> ids, Id base) const
    {
        int64_t hits = 0;
        for (Id id : ids) {
            if (id < base)
                continue;
            const auto rel = static_cast<uint64_t>(id - base);
            if (rel >= num_bits_)
                break;
            hits += test(static_cast<size_t>(rel)) ? 1 : 0;
        }
        return hits;
    }

    /** |this AND other| over the shared word prefix. */
    int64_t
    intersect_count(const Bitmap &other) const
    {
        const size_t words =
            std::min(words_.size(), other.words_.size());
        int64_t total = 0;
        for (size_t w = 0; w < words; ++w)
            total += std::popcount(words_[w] & other.words_[w]);
        return total;
    }

  private:
    std::vector<uint64_t> words_;
    size_t num_bits_ = 0;
};

} // namespace util
} // namespace fastgl
