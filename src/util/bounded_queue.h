/**
 * @file
 * Bounded MPMC queue — the hand-over structure between the stages of the
 * overlapped training pipeline (core::AsyncPipeline).
 *
 * Producers block while the queue is full (backpressure: a slow consumer
 * throttles sampling instead of letting presampled subgraphs pile up
 * beyond the Reorder-window budget), consumers block while it is empty.
 * `close()` gives close-and-drain semantics: pushes are refused but
 * consumers keep popping until the queue runs dry, then receive nullopt.
 * `fail()` propagates an exception: pending items are dropped and every
 * blocked or future `pop()` rethrows the failure, so one dying stage
 * tears the whole pipeline down instead of deadlocking it.
 */
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <utility>

namespace fastgl {
namespace util {

/** Counters exposed by BoundedQueue for tests and stage accounting. */
struct QueueStats
{
    uint64_t pushed = 0;       ///< Items accepted by push/try_push.
    uint64_t popped = 0;       ///< Items handed to pop/try_pop.
    uint64_t push_blocked = 0; ///< Pushes that had to wait (backpressure).
    uint64_t pop_blocked = 0;  ///< Pops that had to wait (starvation).
    size_t max_depth = 0;      ///< High-water mark of the queue depth.
};

/** Blocking bounded multi-producer multi-consumer FIFO. */
template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity maximum items in flight (>= 1). */
    explicit BoundedQueue(size_t capacity)
        : capacity_(capacity < 1 ? 1 : capacity)
    {
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Enqueue @p value, blocking while the queue is full.
     * @return false when the queue was closed or failed (the value is
     *         discarded); true when the value was enqueued.
     */
    bool
    push(T value)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!has_room())
            ++stats_.push_blocked;
        not_full_.wait(lock, [this] {
            return closed_ || error_ || has_room();
        });
        if (closed_ || error_)
            return false;
        items_.push_back(std::move(value));
        on_pushed();
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /** Non-blocking push; false when full, closed, or failed. */
    bool
    try_push(T value)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || error_ || !has_room())
                return false;
            items_.push_back(std::move(value));
            on_pushed();
        }
        not_empty_.notify_one();
        return true;
    }

    /**
     * Dequeue one item, blocking while the queue is empty and open.
     * @return the item; nullopt once the queue is closed *and* drained.
     * @throws rethrows the exception passed to fail(), if any.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (items_.empty() && !closed_ && !error_)
            ++stats_.pop_blocked;
        not_empty_.wait(lock, [this] {
            return closed_ || error_ || !items_.empty();
        });
        if (error_)
            std::rethrow_exception(error_);
        if (items_.empty())
            return std::nullopt; // closed and drained
        std::optional<T> value(std::move(items_.front()));
        items_.pop_front();
        ++stats_.popped;
        lock.unlock();
        not_full_.notify_one();
        return value;
    }

    /** Non-blocking pop; nullopt when empty (or closed and drained). */
    std::optional<T>
    try_pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (error_)
            std::rethrow_exception(error_);
        if (items_.empty())
            return std::nullopt;
        std::optional<T> value(std::move(items_.front()));
        items_.pop_front();
        ++stats_.popped;
        lock.unlock();
        not_full_.notify_one();
        return value;
    }

    /** Refuse further pushes; consumers drain what remains (idempotent). */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    /**
     * Abort the queue with @p error: pending items are dropped, pushes
     * return false, and every pop rethrows @p error. The first failure
     * wins; later calls are no-ops.
     */
    void
    fail(std::exception_ptr error)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!error_) {
                error_ = std::move(error);
                items_.clear();
            }
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    bool
    failed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return error_ != nullptr;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    size_t capacity() const { return capacity_; }

    QueueStats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stats_;
    }

  private:
    bool has_room() const { return items_.size() < capacity_; }

    void
    on_pushed()
    {
        ++stats_.pushed;
        stats_.max_depth = std::max(stats_.max_depth, items_.size());
    }

    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> items_;
    QueueStats stats_;
    bool closed_ = false;
    std::exception_ptr error_;
};

} // namespace util
} // namespace fastgl
