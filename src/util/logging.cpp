#include "util/logging.h"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace fastgl {
namespace util {

namespace {

LogLevel g_level = LogLevel::kInfo;
std::mutex g_mutex;

const char *
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo:  return "INFO ";
      case LogLevel::kWarn:  return "WARN ";
      case LogLevel::kError: return "ERROR";
      default:               return "?????";
    }
}

} // namespace

void
set_log_level(LogLevel level)
{
    g_level = level;
}

LogLevel
log_level()
{
    return g_level;
}

void
log_message(LogLevel level, const std::string &message)
{
    if (static_cast<int>(level) < static_cast<int>(g_level))
        return;
    std::lock_guard<std::mutex> lock(g_mutex);
    std::ostream &out = (level >= LogLevel::kWarn) ? std::cerr : std::cout;
    out << "[fastgl:" << level_name(level) << "] " << message << '\n';
}

void
inform(const std::string &message)
{
    log_message(LogLevel::kInfo, message);
}

void
warn(const std::string &message)
{
    log_message(LogLevel::kWarn, message);
}

void
fatal(const std::string &message)
{
    log_message(LogLevel::kError, "fatal: " + message);
    std::exit(1);
}

void
panic(const std::string &message)
{
    log_message(LogLevel::kError, "panic: " + message);
    std::abort();
}

} // namespace util
} // namespace fastgl
