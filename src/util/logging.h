/**
 * @file
 * Minimal severity-levelled logging for the FastGL library.
 *
 * Follows the gem5 convention: fatal() is for user errors the program
 * cannot recover from (exits with code 1); panic() is for internal
 * invariant violations (aborts). warn()/inform() never stop execution.
 */
#pragma once

#include <sstream>
#include <string>

namespace fastgl {
namespace util {

/** Severity of a log record. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kNone = 4 };

/** Set the global minimum level that is actually emitted. */
void set_log_level(LogLevel level);

/** Current global minimum level. */
LogLevel log_level();

/** Emit one record at @p level; a newline is appended. */
void log_message(LogLevel level, const std::string &message);

/** Informative message the user should see but not worry about. */
void inform(const std::string &message);

/** Something works well enough but deserves attention. */
void warn(const std::string &message);

/**
 * Unrecoverable user-facing error (bad configuration, invalid argument).
 * Prints the message and exits with code 1.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Internal invariant violation — a FastGL bug, never the user's fault.
 * Prints the message and aborts.
 */
[[noreturn]] void panic(const std::string &message);

/** Stream-style helper: FASTGL_LOG(kInfo) << "x=" << x; */
class LogStream
{
  public:
    explicit LogStream(LogLevel level) : level_(level) {}
    ~LogStream() { log_message(level_, stream_.str()); }

    template <typename T>
    LogStream &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

} // namespace util
} // namespace fastgl

#define FASTGL_LOG(level) ::fastgl::util::LogStream(::fastgl::util::LogLevel::level)

/** Assert an internal invariant; compiled in all build types. */
#define FASTGL_CHECK(cond, msg)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::fastgl::util::panic(std::string("check failed: ") + #cond +    \
                                  " — " + (msg));                            \
        }                                                                    \
    } while (0)
