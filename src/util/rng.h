/**
 * @file
 * Deterministic, seedable random number generation.
 *
 * All stochastic components of FastGL (graph generators, samplers, weight
 * initialisation) draw from Rng so that every benchmark row is exactly
 * reproducible for a given seed. The engine is xoshiro256** — fast, high
 * quality, and trivially split-able for per-thread streams.
 */
#pragma once

#include <cstdint>
#include <limits>

namespace fastgl {
namespace util {

/** splitmix64 — used to expand a single seed into engine state. */
inline uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9E3779B97f4A7C15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/**
 * Derive an independent stream seed from (base, stream, index).
 *
 * Used for per-batch RNG streams: sampling batch `index` of epoch
 * `stream` under seed `base` yields the same subgraph no matter which
 * thread (or how many threads) runs it, which is what lets the
 * overlapped AsyncPipeline stay bit-identical to sequential execution.
 */
inline uint64_t
derive_seed(uint64_t base, uint64_t stream, uint64_t index)
{
    uint64_t state = base;
    uint64_t mixed = splitmix64(state);
    state = mixed ^ (stream * 0xD1B54A32D192ED03ULL);
    mixed = splitmix64(state);
    state = mixed ^ (index * 0x9E3779B97F4A7C15ULL);
    return splitmix64(state);
}

/** xoshiro256** pseudo random generator. */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x5EEDFA57ULL)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<uint64_t>::max();
    }

    /** Next raw 64-bit value. */
    uint64_t
    operator()()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) without modulo bias (Lemire). */
    uint64_t
    next_below(uint64_t bound)
    {
        if (bound == 0)
            return 0;
        __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
        uint64_t lo = static_cast<uint64_t>(m);
        if (lo < bound) {
            uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                m = static_cast<__uint128_t>((*this)()) * bound;
                lo = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    next_double()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [lo, hi). */
    float
    next_float(float lo, float hi)
    {
        return lo + static_cast<float>(next_double()) * (hi - lo);
    }

    /** Approximately normal sample via sum of uniforms (Irwin–Hall 12). */
    float
    next_gaussian(float mean = 0.0f, float stddev = 1.0f)
    {
        double acc = 0.0;
        for (int i = 0; i < 12; ++i)
            acc += next_double();
        return mean + stddev * static_cast<float>(acc - 6.0);
    }

    /** Derive an independent stream; useful for per-thread RNGs. */
    Rng
    split()
    {
        return Rng((*this)());
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace util
} // namespace fastgl
