/**
 * @file
 * Cooperative shutdown of a multi-stage thread graph.
 *
 * Every overlapped executor in FastGL (core::AsyncPipeline, the serving
 * loop in fastgl::serve) shares one teardown idiom: a stop flag the
 * stages poll, plus a "close everything" action (typically closing the
 * BoundedQueues between stages) that must run exactly when a run is in
 * flight. StageShutdown packages that idiom so each executor stops
 * hand-rolling the same flag + mutex + callback trio.
 *
 * Lifecycle per run:
 *
 *   shutdown.begin_run(close_all);   // reset flag, register the closer
 *   ... spawn stages; each polls shutdown.stop_requested() ...
 *   ... any thread may call shutdown.request_stop() ...
 *   shutdown.end_run();              // after joins: unregister closer
 *
 * request_stop() is idempotent and safe from any thread, including
 * before begin_run (each run starts fresh — the reset and the closer
 * registration happen atomically, so a stop can never fall between
 * them and leave stages blocked on their queues) and after end_run
 * (the closer is unregistered; the stray flag is cleared by the next
 * begin_run).
 */
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <utility>

namespace fastgl {
namespace util {

/** One stop flag + close-the-queues action for a stage graph. */
class StageShutdown
{
  public:
    StageShutdown() = default;
    StageShutdown(const StageShutdown &) = delete;
    StageShutdown &operator=(const StageShutdown &) = delete;

    /**
     * Start a run: clear the stop flag and register @p close_all, the
     * action that unblocks every stage (close/fail the connecting
     * queues). Flag and closer change under one lock, so a concurrent
     * request_stop() either happens-before this call (and is
     * discarded — it targeted no run) or observes the new closer and
     * stops the new run.
     */
    void
    begin_run(std::function<void()> close_all)
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_.store(false, std::memory_order_release);
        close_ = std::move(close_all);
    }

    /** End a run (call after all stage threads joined). */
    void
    end_run()
    {
        std::lock_guard<std::mutex> lock(mu_);
        close_ = nullptr;
    }

    /**
     * Ask the current run to wind down: sets the flag and invokes the
     * registered closer (if a run is in flight). Safe from any thread;
     * idempotent.
     */
    void
    request_stop()
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_.store(true, std::memory_order_release);
        if (close_)
            close_();
    }

    /** True once request_stop() was called for the current run. */
    bool
    stop_requested() const
    {
        return stop_.load(std::memory_order_acquire);
    }

  private:
    std::atomic<bool> stop_{false};
    /** Guards close_, which is only set while a run is in flight. */
    std::mutex mu_;
    std::function<void()> close_;
};

} // namespace util
} // namespace fastgl
