#include "util/stats.h"

#include <cstdio>

namespace fastgl {
namespace util {

double
SampleStat::percentile(double p)
{
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    p = std::clamp(p, 0.0, 100.0);
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
    if (rank == 0)
        rank = 1;
    return samples_[rank - 1];
}

std::vector<double>
SampleStat::percentiles(std::span<const double> ps)
{
    std::vector<double> out;
    out.reserve(ps.size());
    if (samples_.empty()) {
        out.assign(ps.size(), 0.0);
        return out;
    }
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    for (double p : ps) {
        p = std::clamp(p, 0.0, 100.0);
        size_t rank = static_cast<size_t>(std::ceil(
            p / 100.0 * static_cast<double>(samples_.size())));
        if (rank == 0)
            rank = 1;
        out.push_back(samples_[rank - 1]);
    }
    return out;
}

void
SampleStat::merge(const SampleStat &other)
{
    if (other.samples_.empty())
        return;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
}

namespace {

std::string
format_scaled(double value, const char *const *units, int unit_count,
              double base)
{
    int unit = 0;
    double v = value;
    while (std::abs(v) >= base && unit < unit_count - 1) {
        v /= base;
        ++unit;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[unit]);
    return buf;
}

} // namespace

std::string
human_count(double value)
{
    static const char *units[] = {"", "K", "M", "B", "T"};
    return format_scaled(value, units, 5, 1000.0);
}

std::string
human_bytes(double bytes)
{
    static const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    return format_scaled(bytes, units, 5, 1024.0);
}

std::string
human_seconds(double seconds)
{
    char buf[64];
    if (seconds < 1e-6)
        std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
    else if (seconds < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
    else if (seconds < 1.0)
        std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
    return buf;
}

} // namespace util
} // namespace fastgl
