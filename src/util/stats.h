/**
 * @file
 * Lightweight statistics accumulators used throughout the benchmarks.
 */
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fastgl {
namespace util {

/** Online mean/variance/min/max accumulator (Welford). */
class RunningStat
{
  public:
    /** Add one observation. */
    void
    add(double x)
    {
        ++count_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Sample variance (n-1 denominator). */
    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    /** Reset to the empty state. */
    void
    clear()
    {
        count_ = 0;
        mean_ = m2_ = sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Stores all samples; supports exact percentiles. */
class SampleStat
{
  public:
    void
    add(double x)
    {
        samples_.push_back(x);
        sorted_ = false;
    }

    size_t count() const { return samples_.size(); }

    double
    mean() const
    {
        if (samples_.empty())
            return 0.0;
        double s = 0.0;
        for (double x : samples_)
            s += x;
        return s / static_cast<double>(samples_.size());
    }

    /** Exact percentile via nearest-rank; @p p in [0,100]. */
    double percentile(double p);

    /**
     * Nearest-rank percentiles for every value of @p ps in one pass:
     * the samples are sorted once, not once per percentile, which is
     * what latency reports (p50/p95/p99 over the same window) want.
     * @return one value per entry of @p ps, in the same order.
     */
    std::vector<double> percentiles(std::span<const double> ps);

    /**
     * Fold @p other's samples into this accumulator — the reduction
     * step for per-thread statistics (each worker records locally,
     * the owner merges after the join, no locking on the hot path).
     */
    void merge(const SampleStat &other);

    void clear() { samples_.clear(); sorted_ = false; }

    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
    bool sorted_ = false;
};

/** Pretty-print a quantity in engineering units, e.g. 1.23 M. */
std::string human_count(double value);

/** Pretty-print a byte count, e.g. 1.2 GB. */
std::string human_bytes(double bytes);

/** Pretty-print seconds with an adaptive unit (ns/us/ms/s). */
std::string human_seconds(double seconds);

} // namespace util
} // namespace fastgl
