#include "util/table.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

namespace fastgl {
namespace util {

void
TextTable::set_header(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::add_row(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TextTable::to_string() const
{
    size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());

    std::vector<size_t> width(cols, 0);
    auto account = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    account(header_);
    for (const auto &row : rows_)
        account(row);

    auto emit_row = [&](std::ostringstream &out,
                        const std::vector<std::string> &row) {
        out << "|";
        for (size_t c = 0; c < cols; ++c) {
            std::string cell = c < row.size() ? row[c] : "";
            out << ' ' << cell << std::string(width[c] - cell.size(), ' ')
                << " |";
        }
        out << '\n';
    };

    std::ostringstream out;
    if (!title_.empty())
        out << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit_row(out, header_);
        out << "|";
        for (size_t c = 0; c < cols; ++c)
            out << std::string(width[c] + 2, '-') << "|";
        out << '\n';
    }
    for (const auto &row : rows_)
        emit_row(out, row);
    return out.str();
}

namespace {

/** Lowercase alphanumeric slug of a table title. */
std::string
slugify(const std::string &title)
{
    std::string slug;
    bool dash = false;
    for (char c : title) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            slug += char(std::tolower(static_cast<unsigned char>(c)));
            dash = false;
        } else if (!dash && !slug.empty()) {
            slug += '-';
            dash = true;
        }
    }
    while (!slug.empty() && slug.back() == '-')
        slug.pop_back();
    return slug.empty() ? "table" : slug;
}

} // namespace

void
TextTable::print() const
{
    std::cout << to_string() << std::flush;
    if (const char *dir = std::getenv("FASTGL_CSV_DIR")) {
        const std::string path =
            std::string(dir) + "/" + slugify(title_) + ".csv";
        if (!write_csv(path)) {
            std::cerr << "[fastgl:WARN ] could not export CSV to "
                      << path << '\n';
        }
    }
}

bool
TextTable::write_csv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << ',';
            bool quote = row[c].find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                out << '"';
                for (char ch : row[c]) {
                    if (ch == '"')
                        out << '"';
                    out << ch;
                }
                out << '"';
            } else {
                out << row[c];
            }
        }
        out << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return static_cast<bool>(out);
}

} // namespace util
} // namespace fastgl
