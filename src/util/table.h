/**
 * @file
 * Text-table and CSV emitters used by the benchmark harness to print the
 * same rows/series the paper's tables and figures report.
 */
#pragma once

#include <string>
#include <vector>

namespace fastgl {
namespace util {

/** Column-aligned text table with an optional title, printed to stdout. */
class TextTable
{
  public:
    /** @param title Heading printed above the table (may be empty). */
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void set_header(std::vector<std::string> header);

    /** Append a data row; ragged rows are padded when rendered. */
    void add_row(std::vector<std::string> row);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double value, int precision = 2);

    /** Render to a string. */
    std::string to_string() const;

    /**
     * Render to stdout. When the FASTGL_CSV_DIR environment variable is
     * set, also export the table as CSV into that directory, named by a
     * slug of the title — so every benchmark run can archive its rows
     * without per-benchmark plumbing.
     */
    void print() const;

    /** Write the same content as CSV to @p path. Returns false on IO error. */
    bool write_csv(const std::string &path) const;

    size_t row_count() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace util
} // namespace fastgl
