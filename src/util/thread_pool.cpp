#include "util/thread_pool.h"

#include <algorithm>

namespace fastgl {
namespace util {

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0) {
        threads = std::max(2u, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::parallel_for(size_t count,
                         const std::function<void(size_t, size_t)> &fn)
{
    if (count == 0)
        return;
    size_t chunks = std::min(count, workers_.size());
    size_t chunk_size = (count + chunks - 1) / chunks;
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (size_t c = 0; c < chunks; ++c) {
        size_t begin = c * chunk_size;
        size_t end = std::min(count, begin + chunk_size);
        if (begin >= end)
            break;
        futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
    }
    // Wait for every chunk before surfacing the first failure so no
    // chunk is still touching caller state when we unwind.
    std::exception_ptr first;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

void
ThreadPool::worker_loop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

} // namespace util
} // namespace fastgl
