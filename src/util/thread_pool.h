/**
 * @file
 * Fixed-size thread pool used for genuinely concurrent execution of the
 * Fused-Map hash insertions, the parallel samplers, and the stages of
 * core::AsyncPipeline.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace fastgl {
namespace util {

/** A simple work-queue thread pool. Tasks may not block on each other. */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 means hardware_concurrency(). */
    explicit ThreadPool(size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue any callable; returns a future for its result. A thrown
     * exception is captured and rethrown from future::get(), never from
     * the worker (the pool survives throwing tasks).
     */
    template <typename F>
    auto
    submit(F &&task) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto packaged = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(task));
        std::future<R> future = packaged->get_future();
        enqueue([packaged] { (*packaged)(); });
        return future;
    }

    /**
     * Run @p fn(chunk_begin, chunk_end) over [0, count) split into
     * roughly equal contiguous chunks, one per worker, and wait. A
     * count of 0 is a no-op; fewer items than workers produce fewer
     * chunks. If a chunk throws, the first exception (in chunk order)
     * is rethrown here after all chunks finished.
     */
    void parallel_for(size_t count,
                      const std::function<void(size_t, size_t)> &fn);

    size_t size() const { return workers_.size(); }

    /** Tasks enqueued but not yet claimed by a worker. */
    size_t
    pending() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return tasks_.size();
    }

  private:
    void enqueue(std::function<void()> task);
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace util
} // namespace fastgl
