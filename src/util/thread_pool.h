/**
 * @file
 * Fixed-size thread pool used for genuinely concurrent execution of the
 * Fused-Map hash insertions and the parallel samplers.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fastgl {
namespace util {

/** A simple work-queue thread pool. Tasks may not block on each other. */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 means hardware_concurrency(). */
    explicit ThreadPool(size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; returns a future for its completion. */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run @p fn(chunk_begin, chunk_end) over [0, count) split into
     * roughly equal contiguous chunks, one per worker, and wait.
     */
    void parallel_for(size_t count,
                      const std::function<void(size_t, size_t)> &fn);

    size_t size() const { return workers_.size(); }

  private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::packaged_task<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace util
} // namespace fastgl
