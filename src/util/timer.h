/**
 * @file
 * Wall-clock timing helpers for host-side measurement.
 *
 * Note: simulated (modelled) GPU/PCIe time is produced by fastgl::sim, not
 * by these timers; WallTimer exists for measuring the real host cost of the
 * algorithms themselves (hash probes, set intersections, numeric training).
 */
#pragma once

#include <chrono>
#include <cstdint>

namespace fastgl {
namespace util {

/** Simple monotonic stopwatch. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds since construction or the last reset(). */
    double
    elapsed_seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Microseconds since construction or the last reset(). */
    uint64_t
    elapsed_micros() const
    {
        return static_cast<uint64_t>(elapsed_seconds() * 1e6);
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Accumulates time over multiple start/stop intervals. */
class IntervalTimer
{
  public:
    /** Begin an interval. */
    void start() { timer_.reset(); running_ = true; }

    /** End the interval and add it to the total. */
    void
    stop()
    {
        if (running_) {
            total_ += timer_.elapsed_seconds();
            ++intervals_;
            running_ = false;
        }
    }

    /** Total accumulated seconds. */
    double total_seconds() const { return total_; }

    /** Number of completed intervals. */
    uint64_t intervals() const { return intervals_; }

    /** Clear all accumulated state. */
    void clear() { total_ = 0.0; intervals_ = 0; running_ = false; }

  private:
    WallTimer timer_;
    double total_ = 0.0;
    uint64_t intervals_ = 0;
    bool running_ = false;
};

} // namespace util
} // namespace fastgl
