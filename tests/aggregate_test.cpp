/**
 * @file
 * Tests for the sparse aggregation kernels (Eq. 1 forward, Eq. 5
 * backward), including an adjoint identity check: for linear ops,
 * <y_grad, forward(x)> == <backward(y_grad), x> for all inputs.
 */
#include <gtest/gtest.h>

#include "compute/aggregate.h"
#include "util/rng.h"

namespace fastgl {
namespace {

using compute::Tensor;

/** Block: 2 targets; t0 <- {0,1,2}, t1 <- {1,3}. */
sample::LayerBlock
small_block()
{
    sample::LayerBlock blk;
    blk.targets = {0, 1};
    blk.indptr = {0, 3, 5};
    blk.sources = {0, 1, 2, 1, 3};
    return blk;
}

TEST(Aggregate, ForwardMatchesHandComputation)
{
    const auto blk = small_block();
    std::vector<float> w = {1.0f, 2.0f, 3.0f, 0.5f, 0.5f};
    Tensor in(4, 2);
    for (int64_t r = 0; r < 4; ++r) {
        in.at(r, 0) = float(r + 1);
        in.at(r, 1) = float(10 * (r + 1));
    }
    Tensor out(2, 2);
    compute::aggregate_forward(blk, w, in, out);
    // t0 = 1*x0 + 2*x1 + 3*x2 = (1+4+9, 10+40+90)
    EXPECT_FLOAT_EQ(out.at(0, 0), 14.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1), 140.0f);
    // t1 = 0.5*x1 + 0.5*x3 = (1+2, 10+20)
    EXPECT_FLOAT_EQ(out.at(1, 0), 3.0f);
    EXPECT_FLOAT_EQ(out.at(1, 1), 30.0f);
}

TEST(Aggregate, BackwardScattersTransposed)
{
    const auto blk = small_block();
    std::vector<float> w = {1.0f, 2.0f, 3.0f, 0.5f, 0.5f};
    Tensor gout(2, 1);
    gout.at(0, 0) = 1.0f;
    gout.at(1, 0) = 2.0f;
    Tensor gin(4, 1);
    compute::aggregate_backward(blk, w, gout, gin);
    EXPECT_FLOAT_EQ(gin.at(0, 0), 1.0f);          // w=1 from t0
    EXPECT_FLOAT_EQ(gin.at(1, 0), 2.0f + 1.0f);   // t0 (w=2) + t1 (w=.5*2)
    EXPECT_FLOAT_EQ(gin.at(2, 0), 3.0f);
    EXPECT_FLOAT_EQ(gin.at(3, 0), 1.0f);
}

TEST(Aggregate, AdjointIdentityHoldsOnRandomData)
{
    // <g, A x> == <A^T g, x> for the linear aggregation operator A.
    const auto blk = small_block();
    util::Rng rng(3);
    std::vector<float> w(5);
    for (auto &x : w)
        x = rng.next_float(-1, 1);
    for (int trial = 0; trial < 10; ++trial) {
        Tensor x = Tensor::randn(4, 3, rng, 1.0f);
        Tensor g = Tensor::randn(2, 3, rng, 1.0f);
        Tensor ax(2, 3);
        compute::aggregate_forward(blk, w, x, ax);
        Tensor atg(4, 3);
        compute::aggregate_backward(blk, w, g, atg);
        double lhs = 0.0, rhs = 0.0;
        for (int64_t i = 0; i < 2; ++i)
            for (int64_t j = 0; j < 3; ++j)
                lhs += double(g.at(i, j)) * double(ax.at(i, j));
        for (int64_t i = 0; i < 4; ++i)
            for (int64_t j = 0; j < 3; ++j)
                rhs += double(atg.at(i, j)) * double(x.at(i, j));
        EXPECT_NEAR(lhs, rhs, 1e-4);
    }
}

TEST(Aggregate, WeightGradientIsEdgeDotProduct)
{
    const auto blk = small_block();
    Tensor in(4, 2);
    in.at(1, 0) = 2.0f;
    in.at(1, 1) = 3.0f;
    Tensor gout(2, 2);
    gout.at(0, 0) = 1.0f;
    gout.at(0, 1) = 1.0f;
    std::vector<float> gw;
    compute::aggregate_backward_weights(blk, in, gout, gw);
    ASSERT_EQ(gw.size(), 5u);
    // Edge 1 is (t0 <- src1): grad = <gout[0], in[1]> = 2 + 3.
    EXPECT_FLOAT_EQ(gw[1], 5.0f);
    // Edge 3 is (t1 <- src1) but gout[1] = 0.
    EXPECT_FLOAT_EQ(gw[3], 0.0f);
}

TEST(Aggregate, GcnWeightsAreInverseDegree)
{
    const auto blk = small_block();
    const auto w = compute::gcn_edge_weights(blk);
    ASSERT_EQ(w.size(), 5u);
    EXPECT_FLOAT_EQ(w[0], 1.0f / 3.0f);
    EXPECT_FLOAT_EQ(w[1], 1.0f / 3.0f);
    EXPECT_FLOAT_EQ(w[2], 1.0f / 3.0f);
    EXPECT_FLOAT_EQ(w[3], 0.5f);
    EXPECT_FLOAT_EQ(w[4], 0.5f);
}

TEST(Aggregate, UnitWeightsAreAllOnes)
{
    const auto blk = small_block();
    const auto w = compute::unit_edge_weights(blk);
    for (float x : w)
        EXPECT_FLOAT_EQ(x, 1.0f);
}

TEST(Aggregate, MeanAggregationPreservesConstantFeature)
{
    // With 1/deg weights, a constant input stays constant — the classic
    // sanity property of mean aggregation.
    const auto blk = small_block();
    const auto w = compute::gcn_edge_weights(blk);
    Tensor in(4, 3);
    in.fill(7.5f);
    Tensor out(2, 3);
    compute::aggregate_forward(blk, w, in, out);
    for (int64_t i = 0; i < 2; ++i)
        for (int64_t j = 0; j < 3; ++j)
            EXPECT_NEAR(out.at(i, j), 7.5f, 1e-5);
}

TEST(Aggregate, EmptyTargetRowsProduceZeros)
{
    sample::LayerBlock blk;
    blk.targets = {0, 1};
    blk.indptr = {0, 0, 1};
    blk.sources = {0};
    std::vector<float> w = {2.0f};
    Tensor in(1, 2);
    in.fill(1.0f);
    Tensor out(2, 2);
    compute::aggregate_forward(blk, w, in, out);
    EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), 2.0f);
}

} // namespace
} // namespace fastgl
