/**
 * @file
 * Tests for the graph algorithms (BFS, components, transpose, degree
 * histogram) plus the newer library features: train/val/test splits,
 * with-replacement sampling, input dropout, held-out evaluation.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "core/trainer.h"
#include "graph/algorithms.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "sample/neighbor_sampler.h"

namespace fastgl {
namespace {

TEST(Algorithms, BfsDistancesOnRing)
{
    // Plain 6-cycle (no chords).
    graph::CsrGraph g({0, 2, 4, 6, 8, 10, 12},
                      {1, 5, 0, 2, 1, 3, 2, 4, 3, 5, 0, 4});
    const auto dist = graph::bfs_distances(g, 0);
    EXPECT_EQ(dist[0], 0);
    EXPECT_EQ(dist[1], 1);
    EXPECT_EQ(dist[5], 1);
    EXPECT_EQ(dist[2], 2);
    EXPECT_EQ(dist[3], 3);
}

TEST(Algorithms, BfsMarksUnreachable)
{
    // Two nodes, no edges.
    graph::CsrGraph g({0, 0, 0}, {});
    const auto dist = graph::bfs_distances(g, 0);
    EXPECT_EQ(dist[0], 0);
    EXPECT_EQ(dist[1], -1);
}

TEST(Algorithms, ConnectedComponentsCountsIslands)
{
    // {0,1} connected, {2} isolated, {3,4} connected.
    graph::CsrGraph g({0, 1, 2, 2, 3, 4}, {1, 0, 4, 3});
    const auto cc = graph::connected_components(g);
    EXPECT_EQ(cc.count, 3);
    EXPECT_EQ(cc.component_of[0], cc.component_of[1]);
    EXPECT_EQ(cc.component_of[3], cc.component_of[4]);
    EXPECT_NE(cc.component_of[0], cc.component_of[2]);
    EXPECT_EQ(cc.largest_size(), 2);
}

TEST(Algorithms, GeneratedGraphIsMostlyConnected)
{
    graph::PowerLawParams params;
    params.num_nodes = 2000;
    params.avg_degree = 8;
    graph::CsrGraph g = graph::generate_power_law(params);
    const auto cc = graph::connected_components(g);
    // The ring backbone guarantees full connectivity.
    EXPECT_EQ(cc.count, 1);
}

TEST(Algorithms, ReverseGraphFlipsEdges)
{
    // 0 <- 1, 1 <- 2 (CSR rows are in-neighbour lists).
    graph::CsrGraph g({0, 1, 2, 2}, {1, 2});
    graph::CsrGraph r = graph::reverse_graph(g);
    EXPECT_TRUE(r.validate().empty());
    ASSERT_EQ(r.degree(1), 1);
    EXPECT_EQ(r.neighbors(1)[0], 0);
    ASSERT_EQ(r.degree(2), 1);
    EXPECT_EQ(r.neighbors(2)[0], 1);
    EXPECT_EQ(r.degree(0), 0);
}

TEST(Algorithms, ReverseOfSymmetricGraphPreservesDegrees)
{
    graph::RmatParams params;
    params.num_nodes = 500;
    params.num_edges = 4000;
    graph::CsrGraph g = graph::generate_rmat(params); // mirrored edges
    graph::CsrGraph r = graph::reverse_graph(g);
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u)
        EXPECT_EQ(g.degree(u), r.degree(u));
}

TEST(Algorithms, DegreeHistogramSumsToNodeCount)
{
    graph::RmatParams params;
    params.num_nodes = 1000;
    params.num_edges = 8000;
    graph::CsrGraph g = graph::generate_rmat(params);
    const auto hist = graph::degree_histogram(g, 32);
    EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), int64_t(0)),
              g.num_nodes());
}

TEST(Splits, DisjointAndFractionCorrect)
{
    graph::ReplicaOptions ropts;
    ropts.size_factor = 0.2;
    ropts.materialize_features = false;
    for (auto id :
         {graph::DatasetId::kReddit, graph::DatasetId::kPapers100M}) {
        const graph::Dataset ds = graph::load_replica(id, ropts);
        ASSERT_FALSE(ds.train_nodes.empty());
        ASSERT_FALSE(ds.val_nodes.empty());
        ASSERT_FALSE(ds.test_nodes.empty());

        std::set<graph::NodeId> train(ds.train_nodes.begin(),
                                      ds.train_nodes.end());
        for (graph::NodeId u : ds.val_nodes)
            EXPECT_FALSE(train.count(u));
        for (graph::NodeId u : ds.test_nodes)
            EXPECT_FALSE(train.count(u));
        std::set<graph::NodeId> val(ds.val_nodes.begin(),
                                    ds.val_nodes.end());
        for (graph::NodeId u : ds.test_nodes)
            EXPECT_FALSE(val.count(u));

        const double frac = double(ds.train_nodes.size()) /
                            double(ds.graph.num_nodes());
        const double target = std::min(
            0.9, graph::full_scale_spec(id).train_fraction);
        EXPECT_NEAR(frac, target, 0.02) << graph::dataset_name(id);
    }
}

TEST(SamplerReplace, SampledDegreeEqualsFanout)
{
    graph::RmatParams params;
    params.num_nodes = 2000;
    params.num_edges = 20000;
    params.seed = 5;
    graph::CsrGraph g = graph::generate_rmat(params);
    sample::NeighborSamplerOptions opts;
    opts.fanouts = {4};
    opts.replace = true;
    opts.add_self_loops = false;
    sample::NeighborSampler sampler(g, opts);
    std::vector<graph::NodeId> seeds = {1, 2, 3};
    const auto sg = sampler.sample(seeds);
    const auto &blk = sg.blocks[0];
    for (int64_t t = 0; t < blk.num_targets(); ++t) {
        const graph::NodeId gu = sg.nodes[size_t(t)];
        if (g.degree(gu) > 0) {
            EXPECT_EQ(blk.indptr[t + 1] - blk.indptr[t], 4);
        }
    }
}

TEST(TrainerExtras, InputDropoutStillLearns)
{
    graph::ReplicaOptions ropts;
    ropts.size_factor = 0.05;
    const graph::Dataset ds =
        graph::load_replica(graph::DatasetId::kReddit, ropts);
    core::TrainerOptions opts;
    opts.fanouts = {4, 4};
    opts.max_batches = 4;
    opts.batch_size = 32;
    opts.input_dropout = 0.3f;
    core::Trainer trainer(ds, opts);
    const auto first = trainer.train_epoch();
    double last = first.mean_loss;
    for (int e = 0; e < 4; ++e)
        last = trainer.train_epoch().mean_loss;
    EXPECT_LT(last, first.mean_loss * 1.02);
}

TEST(TrainerExtras, EvaluateOnHeldOutSplits)
{
    graph::ReplicaOptions ropts;
    ropts.size_factor = 0.05;
    const graph::Dataset ds =
        graph::load_replica(graph::DatasetId::kReddit, ropts);
    core::TrainerOptions opts;
    opts.fanouts = {4, 4};
    opts.max_batches = 4;
    opts.batch_size = 32;
    core::Trainer trainer(ds, opts);
    trainer.train_epoch();
    const double val = trainer.evaluate_nodes(ds.val_nodes, 2);
    const double test = trainer.evaluate_nodes(ds.test_nodes, 2);
    EXPECT_GE(val, 0.0);
    EXPECT_LE(val, 1.0);
    EXPECT_GE(test, 0.0);
    EXPECT_LE(test, 1.0);
}

} // namespace
} // namespace fastgl
