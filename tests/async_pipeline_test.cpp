/**
 * @file
 * Concurrency tests for core::AsyncPipeline: bit-identical modelled
 * results versus the sequential Pipeline across thread counts and
 * presets, backpressure under a slow consumer, exception propagation
 * from every stage, and clean shutdown mid-epoch.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/async_pipeline.h"
#include "core/pipeline.h"
#include "graph/datasets.h"

namespace fastgl {
namespace {

const graph::Dataset &
products()
{
    static graph::Dataset ds = [] {
        graph::ReplicaOptions opts;
        opts.size_factor = 0.15;
        opts.materialize_features = false;
        return graph::load_replica(graph::DatasetId::kProducts, opts);
    }();
    return ds;
}

core::PipelineOptions
base_options(core::Framework fw)
{
    core::PipelineOptions opts;
    opts.fw = core::framework_preset(fw);
    opts.num_gpus = 2;
    opts.max_batches = 12;
    opts.reorder_window = 4; // several windows per GPU per epoch
    opts.seed = 7;
    return opts;
}

/** Exact (bit-level) equality of two epoch results. */
void
expect_identical(const core::EpochResult &a, const core::EpochResult &b)
{
    EXPECT_EQ(a.phases.sample, b.phases.sample);
    EXPECT_EQ(a.phases.id_map, b.phases.id_map);
    EXPECT_EQ(a.phases.io, b.phases.io);
    EXPECT_EQ(a.phases.compute, b.phases.compute);
    EXPECT_EQ(a.phases.allreduce, b.phases.allreduce);
    EXPECT_EQ(a.epoch_seconds, b.epoch_seconds);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.nodes_loaded, b.nodes_loaded);
    EXPECT_EQ(a.nodes_reused, b.nodes_reused);
    EXPECT_EQ(a.cache_hits, b.cache_hits);
    EXPECT_EQ(a.bytes_loaded, b.bytes_loaded);
    EXPECT_EQ(a.sampled_instances, b.sampled_instances);
    EXPECT_EQ(a.unique_nodes, b.unique_nodes);
}

TEST(AsyncPipeline, BitIdenticalToSequentialFastGl)
{
    const auto opts = base_options(core::Framework::kFastGL);
    core::Pipeline seq(products(), opts);

    core::AsyncPipelineOptions async;
    async.sampler_threads = 2;
    core::AsyncPipeline overlapped(products(), opts, async);

    // Two epochs: the epoch counter and shuffle stream must stay in
    // lockstep with the sequential executor across calls.
    for (int epoch = 0; epoch < 2; ++epoch) {
        const auto rs = seq.run_epoch();
        const auto ra = overlapped.run_epoch();
        expect_identical(rs, ra);
    }
}

TEST(AsyncPipeline, BitIdenticalAcrossSamplerThreadCounts)
{
    const auto opts = base_options(core::Framework::kFastGL);
    core::Pipeline seq(products(), opts);
    const auto reference = seq.run_epoch();

    for (int threads : {1, 2, 4, 8}) {
        core::AsyncPipelineOptions async;
        async.sampler_threads = threads;
        core::AsyncPipeline pipe(products(), opts, async);
        expect_identical(reference, pipe.run_epoch());
    }
}

TEST(AsyncPipeline, BitIdenticalAcrossGatherAndComputeThreads)
{
    const auto opts = base_options(core::Framework::kFastGL);
    core::Pipeline seq(products(), opts);
    const auto reference = seq.run_epoch();

    for (int gather : {1, 3}) {
        for (int compute : {1, 2}) {
            core::AsyncPipelineOptions async;
            async.sampler_threads = 4;
            async.gather_threads = gather;
            async.compute_threads = compute;
            core::AsyncPipeline pipe(products(), opts, async);
            expect_identical(reference, pipe.run_epoch());
        }
    }
}

TEST(AsyncPipeline, BitIdenticalWithStaticCachePreset)
{
    // GNNLab preset: exercises the shared (atomic-stats) feature cache
    // on the concurrent gather path.
    auto opts = base_options(core::Framework::kGnnLab);
    opts.cache_ratio = 0.2;
    core::Pipeline seq(products(), opts);

    core::AsyncPipelineOptions async;
    async.sampler_threads = 3;
    async.gather_threads = 2;
    core::AsyncPipeline pipe(products(), opts, async);
    expect_identical(seq.run_epoch(), pipe.run_epoch());
}

TEST(AsyncPipeline, BitIdenticalWithRandomWalkSampler)
{
    auto opts = base_options(core::Framework::kFastGL);
    opts.use_random_walk = true;
    core::Pipeline seq(products(), opts);

    core::AsyncPipelineOptions async;
    async.sampler_threads = 4;
    core::AsyncPipeline pipe(products(), opts, async);
    expect_identical(seq.run_epoch(), pipe.run_epoch());
}

TEST(AsyncPipeline, BackpressureThrottlesProducersUnderSlowConsumer)
{
    auto opts = base_options(core::Framework::kFastGL);
    opts.max_batches = 16;
    opts.reorder_window = 2; // 8 windows -> plenty of hand-overs

    core::AsyncPipelineOptions async;
    async.sampler_threads = 4;
    async.gather_threads = 1;
    async.queue_depth = 2;
    // Gate the first gathered window on the producers having sampled
    // more windows than the queue can hold (7 of 8, i.e. 14 batches:
    // one consumed + two queued + four in producer hands), so at least
    // one producer provably blocks in push() regardless of how slow
    // this host or a sanitizer build is.
    std::atomic<int> sampled{0};
    async.sample_hook = [&sampled](int64_t) { sampled.fetch_add(1); };
    std::atomic<bool> gated{false};
    async.gather_hook = [&](int) {
        if (gated.exchange(true))
            return;
        while (sampled.load() < 14)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        // Let the last samplers actually enter their blocking push.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    };
    core::AsyncPipeline pipe(products(), opts, async);
    const auto result = pipe.run_epoch();
    EXPECT_EQ(result.batches, 16);

    const core::AsyncEpochStats &stats = pipe.last_stats();
    // The queue never exceeded its bound...
    EXPECT_LE(stats.batch_queue.max_depth, async.queue_depth);
    // ...and fast producers really had to wait for the slow consumer.
    EXPECT_GT(stats.batch_queue.push_blocked, 0u);
    EXPECT_EQ(stats.batches_completed, 16);
    EXPECT_FALSE(stats.stopped_early);
}

TEST(AsyncPipeline, ReassemblyRingGrowsWhenOneWindowLagsFarBehind)
{
    // Regression: the reassembly ring's seed capacity (queue_depth +
    // producers + gatherers + 1 = 5 here) counts only windows held in
    // producers, the queue, and gather threads — not windows already
    // parked in the ring. Stall one producer on its first window while
    // the other samples the remaining seven: the gather thread parks
    // windows up to sequence 7 with next_window still at 0 or 1, far
    // past the seed capacity, which used to trip a FASTGL_CHECK panic
    // and must now grow the ring instead. The epoch still finishes and
    // stays bit-identical to the sequential executor.
    auto opts = base_options(core::Framework::kFastGL);
    opts.num_gpus = 1;
    opts.max_batches = 16;
    opts.reorder_window = 2; // 8 windows, all on the single GPU

    core::Pipeline seq(products(), opts);
    const auto reference = seq.run_epoch();

    core::AsyncPipelineOptions async;
    async.sampler_threads = 2;
    async.gather_threads = 1;
    async.compute_threads = 1;
    async.queue_depth = 1;
    std::atomic<int> sampled{0};
    std::atomic<bool> stalled{false};
    async.sample_hook = [&](int64_t) {
        if (stalled.exchange(true)) {
            sampled.fetch_add(1);
            return;
        }
        // The first producer to arrive holds its window hostage until
        // the other has sampled all 14 remaining batches; the grace
        // period then lets the gather thread park those windows.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        while (sampled.load() < 14 &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    };
    core::AsyncPipeline pipe(products(), opts, async);
    expect_identical(reference, pipe.run_epoch());
    EXPECT_EQ(pipe.last_stats().batches_completed, 16);
}

TEST(AsyncPipeline, SampleStageExceptionPropagatesToCaller)
{
    auto opts = base_options(core::Framework::kFastGL);
    core::AsyncPipelineOptions async;
    async.sampler_threads = 3;
    async.sample_hook = [](int64_t index) {
        if (index == 5)
            throw std::runtime_error("sampler stage died");
    };
    core::AsyncPipeline pipe(products(), opts, async);
    EXPECT_THROW(pipe.run_epoch(), std::runtime_error);
}

TEST(AsyncPipeline, GatherStageExceptionPropagatesToCaller)
{
    auto opts = base_options(core::Framework::kFastGL);
    core::AsyncPipelineOptions async;
    async.sampler_threads = 2;
    std::atomic<int> windows{0};
    async.gather_hook = [&windows](int) {
        if (windows.fetch_add(1) == 1)
            throw std::runtime_error("gather stage died");
    };
    core::AsyncPipeline pipe(products(), opts, async);
    EXPECT_THROW(pipe.run_epoch(), std::runtime_error);
}

TEST(AsyncPipeline, ComputeStageExceptionPropagatesToCaller)
{
    auto opts = base_options(core::Framework::kFastGL);
    core::AsyncPipelineOptions async;
    async.sampler_threads = 2;
    async.compute_threads = 2;
    std::atomic<int> batches{0};
    async.compute_hook = [&batches](int64_t) {
        if (batches.fetch_add(1) == 3)
            throw std::runtime_error("compute stage died");
    };
    core::AsyncPipeline pipe(products(), opts, async);
    EXPECT_THROW(pipe.run_epoch(), std::runtime_error);
}

TEST(AsyncPipeline, CleanShutdownMidEpoch)
{
    auto opts = base_options(core::Framework::kFastGL);
    opts.max_batches = 16;
    opts.reorder_window = 2;

    core::AsyncPipelineOptions async;
    async.sampler_threads = 2;
    core::AsyncPipeline *handle = nullptr;
    std::atomic<int> computed{0};
    async.compute_hook = [&](int64_t) {
        if (computed.fetch_add(1) == 2)
            handle->request_stop();
    };
    core::AsyncPipeline pipe(products(), opts, async);
    handle = &pipe;

    const auto result = pipe.run_epoch(); // must return, not hang
    const core::AsyncEpochStats &stats = pipe.last_stats();
    EXPECT_TRUE(stats.stopped_early);
    EXPECT_TRUE(pipe.stop_requested());
    EXPECT_LT(stats.batches_completed, 16);
    // result.batches still reports the planned epoch size; the stats
    // carry the completed count.
    EXPECT_EQ(result.batches, 16);
}

TEST(AsyncPipeline, EpochAfterStopRunsCleanAndStaysDeterministic)
{
    const auto opts = base_options(core::Framework::kFastGL);

    // Sequential twin runs two full epochs.
    core::Pipeline seq(products(), opts);
    seq.run_epoch();
    const auto reference = seq.run_epoch();

    // Async twin: epoch 1 is cut short, epoch 2 runs to completion.
    core::AsyncPipelineOptions async;
    async.sampler_threads = 2;
    core::AsyncPipeline *handle = nullptr;
    std::atomic<bool> first_epoch{true};
    async.compute_hook = [&](int64_t) {
        if (first_epoch.load())
            handle->request_stop();
    };
    core::AsyncPipeline pipe(products(), opts, async);
    handle = &pipe;
    pipe.run_epoch(); // partial epoch 1
    EXPECT_TRUE(pipe.last_stats().stopped_early);
    first_epoch.store(false);

    // Epoch numbering and shuffle state stayed in lockstep, so epoch 2
    // is still bit-identical to the sequential executor's epoch 2.
    expect_identical(reference, pipe.run_epoch());
    EXPECT_FALSE(pipe.last_stats().stopped_early);
}

TEST(AsyncPipeline, StatsAccountOverlappedExecution)
{
    const auto opts = base_options(core::Framework::kFastGL);
    core::AsyncPipelineOptions async;
    async.sampler_threads = 2;
    core::AsyncPipeline pipe(products(), opts, async);
    pipe.run_epoch();

    const core::AsyncEpochStats &stats = pipe.last_stats();
    EXPECT_GT(stats.wall_seconds, 0.0);
    EXPECT_GT(stats.sample_busy_seconds, 0.0);
    EXPECT_GT(stats.gather_busy_seconds, 0.0);
    EXPECT_GT(stats.compute_busy_seconds, 0.0);
    EXPECT_EQ(stats.batches_completed, 12);
    // 12 batches over 2 GPUs in windows of 4 -> 2 windows per GPU.
    EXPECT_EQ(stats.windows_produced, 4);
    EXPECT_EQ(stats.batch_queue.pushed, 4u);
    EXPECT_EQ(stats.compute_queue.pushed, 12u);
}

} // namespace
} // namespace fastgl
