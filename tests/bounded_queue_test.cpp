/**
 * @file
 * Concurrency tests for util::BoundedQueue: FIFO order, backpressure
 * under a slow consumer, close-and-drain semantics, exception
 * propagation, and an MPMC stress run with exactly-once delivery.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/bounded_queue.h"

namespace fastgl {
namespace {

TEST(BoundedQueue, SingleThreadFifo)
{
    util::BoundedQueue<int> q(4);
    EXPECT_EQ(q.capacity(), 4u);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_TRUE(q.push(4));
    EXPECT_EQ(q.pop().value(), 3);
    EXPECT_EQ(q.pop().value(), 4);
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryOperationsNeverBlock)
{
    util::BoundedQueue<int> q(2);
    EXPECT_TRUE(q.try_push(1));
    EXPECT_TRUE(q.try_push(2));
    EXPECT_FALSE(q.try_push(3)); // full
    EXPECT_EQ(q.try_pop().value(), 1);
    EXPECT_EQ(q.try_pop().value(), 2);
    EXPECT_FALSE(q.try_pop().has_value()); // empty
}

TEST(BoundedQueue, CapacityClampedToOne)
{
    util::BoundedQueue<int> q(0);
    EXPECT_EQ(q.capacity(), 1u);
    EXPECT_TRUE(q.try_push(7));
    EXPECT_FALSE(q.try_push(8));
}

TEST(BoundedQueue, PushBlocksUntilConsumerMakesRoom)
{
    util::BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));

    std::atomic<bool> second_pushed{false};
    std::thread producer([&] {
        ASSERT_TRUE(q.push(2)); // must block: queue is full
        second_pushed.store(true);
    });

    // Give the producer a chance to block, then assert it really did.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(second_pushed.load());

    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    producer.join();
    EXPECT_TRUE(second_pushed.load());
    EXPECT_GE(q.stats().push_blocked, 1u);
    EXPECT_LE(q.stats().max_depth, q.capacity());
}

TEST(BoundedQueue, PopBlocksUntilProducerDelivers)
{
    util::BoundedQueue<int> q(2);
    std::atomic<bool> popped{false};
    std::thread consumer([&] {
        EXPECT_EQ(q.pop().value(), 42);
        popped.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(popped.load());
    ASSERT_TRUE(q.push(42));
    consumer.join();
    EXPECT_TRUE(popped.load());
    EXPECT_GE(q.stats().pop_blocked, 1u);
}

TEST(BoundedQueue, CloseAndDrainDeliversRemainingItems)
{
    util::BoundedQueue<int> q(8);
    ASSERT_TRUE(q.push(1));
    ASSERT_TRUE(q.push(2));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(3)); // refused after close
    // ...but consumers still drain what was queued.
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_FALSE(q.pop().has_value()); // drained: nullopt, no block
    EXPECT_FALSE(q.pop().has_value()); // idempotent
}

TEST(BoundedQueue, CloseWakesBlockedConsumers)
{
    util::BoundedQueue<int> q(2);
    std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    consumer.join(); // must not hang
}

TEST(BoundedQueue, CloseWakesBlockedProducers)
{
    util::BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    producer.join(); // must not hang
    EXPECT_EQ(q.pop().value(), 1);
}

TEST(BoundedQueue, FailPropagatesExceptionToConsumers)
{
    util::BoundedQueue<int> q(4);
    ASSERT_TRUE(q.push(1)); // pending items are dropped by fail()
    q.fail(std::make_exception_ptr(std::runtime_error("stage died")));
    EXPECT_TRUE(q.failed());
    EXPECT_FALSE(q.push(2));
    EXPECT_THROW(q.pop(), std::runtime_error);
    EXPECT_THROW(q.try_pop(), std::runtime_error);
}

TEST(BoundedQueue, FailWakesBlockedConsumerWithException)
{
    util::BoundedQueue<int> q(2);
    std::atomic<bool> threw{false};
    std::thread consumer([&] {
        try {
            q.pop();
        } catch (const std::runtime_error &) {
            threw.store(true);
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.fail(std::make_exception_ptr(std::runtime_error("boom")));
    consumer.join();
    EXPECT_TRUE(threw.load());
}

TEST(BoundedQueue, FirstFailureWins)
{
    util::BoundedQueue<int> q(2);
    q.fail(std::make_exception_ptr(std::runtime_error("first")));
    q.fail(std::make_exception_ptr(std::logic_error("second")));
    try {
        q.pop();
        FAIL() << "pop() should have thrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    } catch (...) {
        FAIL() << "wrong exception type (second fail overwrote first)";
    }
}

TEST(BoundedQueue, MpmcStressDeliversEveryItemExactlyOnce)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 3;
    constexpr int kPerProducer = 2500;
    util::BoundedQueue<int> q(8);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.push(p * kPerProducer + i));
        });
    }

    std::mutex seen_mu;
    std::set<int> seen;
    std::atomic<int64_t> count{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            while (auto v = q.pop()) {
                count.fetch_add(1);
                std::lock_guard<std::mutex> lock(seen_mu);
                EXPECT_TRUE(seen.insert(*v).second)
                    << "duplicate delivery of " << *v;
            }
        });
    }

    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();

    EXPECT_EQ(count.load(), kProducers * kPerProducer);
    EXPECT_EQ(int64_t(seen.size()), kProducers * kPerProducer);
    const util::QueueStats stats = q.stats();
    EXPECT_EQ(stats.pushed, uint64_t(kProducers * kPerProducer));
    EXPECT_EQ(stats.popped, uint64_t(kProducers * kPerProducer));
    EXPECT_LE(stats.max_depth, q.capacity());
}

TEST(BoundedQueue, MoveOnlyPayload)
{
    util::BoundedQueue<std::unique_ptr<int>> q(2);
    ASSERT_TRUE(q.push(std::make_unique<int>(5)));
    auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(**item, 5);
}

} // namespace
} // namespace fastgl
