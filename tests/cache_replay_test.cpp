/**
 * @file
 * Tests for the aggregation cache replay (Table 2's measurement path):
 * irregular sampled blocks must produce the paper's low-L1 / moderate-L2
 * hit-rate signature.
 */
#include <gtest/gtest.h>

#include "compute/cache_replay.h"
#include "graph/generators.h"
#include "sample/neighbor_sampler.h"

namespace fastgl {
namespace {

sample::SampledSubgraph
sampled(int num_seeds, uint64_t seed)
{
    graph::RmatParams params;
    params.num_nodes = 20000;
    params.num_edges = 200000;
    params.seed = 31;
    static graph::CsrGraph g = graph::generate_rmat(params);
    sample::NeighborSamplerOptions opts;
    opts.fanouts = {5, 10, 15};
    opts.seed = seed;
    sample::NeighborSampler sampler(g, opts);
    std::vector<graph::NodeId> seeds;
    for (int i = 0; i < num_seeds; ++i)
        seeds.push_back(graph::NodeId(i * 7 + 1));
    return sampler.sample(seeds);
}

TEST(CacheReplay, HitRatesInPaperRegime)
{
    const auto sg = sampled(400, 3);
    const auto &block = sg.blocks.back(); // largest (input-side) block
    const auto result = compute::replay_naive_aggregation(
        block, 256, sim::rtx3090(), /*max_waves=*/4);
    // Paper Table 2: L1 3-5%, L2 15-25% — accept a generous band around
    // that regime; the essential property is L1 << L2 << 1.
    EXPECT_GT(result.line_accesses, 0u);
    EXPECT_LT(result.l1_hit_rate, 0.30);
    EXPECT_GT(result.l2_hit_rate, result.l1_hit_rate);
    EXPECT_LT(result.l2_hit_rate, 0.80);
}

TEST(CacheReplay, SmallerWorkingSetHitsMore)
{
    const auto sg_small = sampled(20, 5);
    const auto sg_large = sampled(600, 5);
    const auto small = compute::replay_naive_aggregation(
        sg_small.blocks.back(), 128, sim::rtx3090(), 4);
    const auto large = compute::replay_naive_aggregation(
        sg_large.blocks.back(), 128, sim::rtx3090(), 4);
    // Small subgraphs fit the hierarchy better; allow sampling noise
    // (SM 0 sees only every 82nd target of the tiny block).
    EXPECT_GE(small.l1_hit_rate + 0.05, large.l1_hit_rate);
    EXPECT_GE(small.l2_hit_rate + 0.05, large.l2_hit_rate);
}

TEST(CacheReplay, WaveCapBoundsWork)
{
    const auto sg = sampled(300, 7);
    const auto capped = compute::replay_naive_aggregation(
        sg.blocks.back(), 64, sim::rtx3090(), 1);
    const auto full = compute::replay_naive_aggregation(
        sg.blocks.back(), 64, sim::rtx3090(), 0);
    EXPECT_LT(capped.line_accesses, full.line_accesses);
}

TEST(CacheReplay, ZeroDimFeaturesDegenerate)
{
    const auto sg = sampled(10, 9);
    const auto result = compute::replay_naive_aggregation(
        sg.blocks.front(), 1, sim::rtx3090(), 2);
    EXPECT_GT(result.line_accesses, 0u);
}

} // namespace
} // namespace fastgl
