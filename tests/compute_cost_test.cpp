/**
 * @file
 * Tests for the compute-phase cost model: plan ordering (Memory-Aware <
 * naive), GNNAdvisor's preprocessing tax, scaling behaviour.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "compute/compute_cost.h"
#include "graph/generators.h"
#include "sample/neighbor_sampler.h"

namespace fastgl {
namespace {

sample::SampledSubgraph
sampled_subgraph(int hops = 3)
{
    graph::RmatParams params;
    params.num_nodes = 20000;
    params.num_edges = 160000;
    params.seed = 12;
    static graph::CsrGraph g = graph::generate_rmat(params);
    std::vector<int> fanouts;
    const int paper[] = {5, 10, 15};
    for (int h = 0; h < hops; ++h)
        fanouts.push_back(paper[h]);
    sample::NeighborSamplerOptions opts;
    opts.fanouts = fanouts;
    opts.seed = 21;
    sample::NeighborSampler sampler(g, opts);
    std::vector<graph::NodeId> seeds;
    for (int i = 0; i < 200; ++i)
        seeds.push_back(graph::NodeId(i));
    return sampler.sample(seeds);
}

compute::ModelConfig
gcn_config(int layers = 3)
{
    compute::ModelConfig cfg;
    cfg.type = compute::ModelType::kGcn;
    cfg.in_dim = 256;
    cfg.hidden_dim = 64;
    cfg.num_classes = 47;
    cfg.num_layers = layers;
    return cfg;
}

TEST(ComputeCost, MemoryAwareBeatsNaive)
{
    const auto sg = sampled_subgraph();
    const auto cfg = gcn_config();
    compute::ComputeCostModel naive(sim::rtx3090(),
                                    compute::ComputePlan::kNaive);
    compute::ComputeCostModel aware(
        sim::rtx3090(), compute::ComputePlan::kMemoryAware);
    const double tn = naive.training_step(cfg, sg).total();
    const double tm = aware.training_step(cfg, sg).total();
    EXPECT_GT(tn, tm);
    // Paper Fig. 11: speedup 1.1x to 6.7x.
    EXPECT_GT(tn / tm, 1.1);
    EXPECT_LT(tn / tm, 8.0);
}

TEST(ComputeCost, GnnAdvisorPaysPreprocessEveryIteration)
{
    const auto sg = sampled_subgraph();
    const auto cfg = gcn_config();
    compute::ComputeCostModel advisor(
        sim::rtx3090(), compute::ComputePlan::kGnnAdvisor);
    const auto cost = advisor.training_step(cfg, sg);
    EXPECT_GT(cost.preprocess, 0.0);
    // Paper Fig. 11: preprocessing occupies a large share (up to 75%)
    // of GNNAdvisor's compute phase.
    EXPECT_GT(cost.preprocess / cost.total(), 0.2);

    compute::ComputeCostModel naive(sim::rtx3090(),
                                    compute::ComputePlan::kNaive);
    EXPECT_DOUBLE_EQ(naive.training_step(cfg, sg).preprocess, 0.0);
}

TEST(ComputeCost, GnnAdvisorNetSlowerThanNaiveWithPreprocess)
{
    // GNNAdvisor's kernels beat naive, but per-iteration preprocessing
    // makes it a net loss in sampling-based training (paper Section 6.3).
    const auto sg = sampled_subgraph();
    const auto cfg = gcn_config();
    compute::ComputeCostModel advisor(
        sim::rtx3090(), compute::ComputePlan::kGnnAdvisor);
    compute::ComputeCostModel naive(sim::rtx3090(),
                                    compute::ComputePlan::kNaive);
    const auto adv = advisor.training_step(cfg, sg);
    const auto nai = naive.training_step(cfg, sg);
    EXPECT_LT(adv.forward + adv.backward, nai.forward + nai.backward);
    EXPECT_GT(adv.total(), nai.total());
}

TEST(ComputeCost, ScalesWithFeatureDim)
{
    const auto sg = sampled_subgraph();
    auto small = gcn_config();
    small.in_dim = 64;
    auto large = gcn_config();
    large.in_dim = 512;
    compute::ComputeCostModel model(sim::rtx3090(),
                                    compute::ComputePlan::kMemoryAware);
    EXPECT_GT(model.training_step(large, sg).total(),
              model.training_step(small, sg).total());
}

TEST(ComputeCost, BackwardComparableToForward)
{
    const auto sg = sampled_subgraph();
    const auto cfg = gcn_config();
    compute::ComputeCostModel model(sim::rtx3090(),
                                    compute::ComputePlan::kNaive);
    const auto cost = model.training_step(cfg, sg);
    EXPECT_GT(cost.backward, 0.5 * cost.forward);
    EXPECT_LT(cost.backward, 4.0 * cost.forward);
}

TEST(ComputeCost, AllThreeModelsProduceFiniteCosts)
{
    const auto sg = sampled_subgraph();
    for (auto type : {compute::ModelType::kGcn, compute::ModelType::kGin,
                      compute::ModelType::kGat}) {
        auto cfg = gcn_config();
        cfg.type = type;
        compute::ComputeCostModel model(
            sim::rtx3090(), compute::ComputePlan::kMemoryAware);
        const auto cost = model.training_step(cfg, sg);
        EXPECT_GT(cost.total(), 0.0) << compute::model_type_name(type);
        EXPECT_TRUE(std::isfinite(cost.total()));
    }
}

TEST(ComputeCost, GatCostsMoreThanGcn)
{
    // At equal aggregation width (64), attention adds the projection over
    // all sources plus per-edge score work on top of GCN's pipeline.
    const auto sg = sampled_subgraph();
    auto gcn = gcn_config();
    gcn.in_dim = 64;
    auto gat = gcn_config();
    gat.in_dim = 64;
    gat.type = compute::ModelType::kGat;
    compute::ComputeCostModel model(sim::rtx3090(),
                                    compute::ComputePlan::kNaive);
    EXPECT_GT(model.training_step(gat, sg).total(),
              model.training_step(gcn, sg).total());
}

TEST(ComputeCost, RooflineAggregationExposesCounts)
{
    const auto sg = sampled_subgraph();
    compute::ComputeCostModel model(sim::rtx3090(),
                                    compute::ComputePlan::kNaive);
    const auto cost =
        model.aggregation_cost(sg.blocks.back(), 256);
    EXPECT_GT(cost.flops, 0.0);
    EXPECT_GT(cost.bytes, 0.0);
    EXPECT_GT(cost.gflops(), 0.0);
}

TEST(ComputeCost, PlanNamesPrintable)
{
    EXPECT_STREQ(compute::compute_plan_name(compute::ComputePlan::kNaive),
                 "naive");
    EXPECT_STREQ(
        compute::compute_plan_name(compute::ComputePlan::kMemoryAware),
        "memory-aware");
    EXPECT_STREQ(
        compute::compute_plan_name(compute::ComputePlan::kGnnAdvisor),
        "gnnadvisor");
}

} // namespace
} // namespace fastgl
