/**
 * @file
 * Tests for the deterministic parallel compute-kernel engine: bitwise
 * equality against verbatim replicas of the historical naive kernels at
 * several thread counts, golden hashes pinning the pre-engine outputs,
 * fused-epilogue equivalence, the bias_backward overwrite regression,
 * reverse-CSR structure, hoisted validation, and finite-difference
 * gradchecks of the fused layer paths on a multi-threaded engine.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "compute/aggregate.h"
#include "compute/gat_layer.h"
#include "compute/gcn_layer.h"
#include "compute/gin_layer.h"
#include "compute/kernel_engine.h"
#include "compute/ops.h"
#include "sample/minibatch.h"
#include "util/rng.h"

namespace fastgl {
namespace {

using compute::Activation;
using compute::KernelEngine;
using compute::Tensor;

// ------------------------------------------------------------------
// Verbatim replicas of the pre-engine kernels (the exact loops the
// engine must reproduce bit for bit, including the zero-skip in
// gemm/gemm_ta and the scalar dot of gemm_tb).
// ------------------------------------------------------------------

void
legacy_gemm(const Tensor &a, const Tensor &b, Tensor &c)
{
    const int64_t m = a.rows(), k = a.cols(), n = b.cols();
    c.fill_zero();
    for (int64_t i = 0; i < m; ++i) {
        float *ci = c.data() + i * n;
        const float *ai = a.data() + i * k;
        for (int64_t p = 0; p < k; ++p) {
            const float av = ai[p];
            if (av == 0.0f)
                continue;
            const float *bp = b.data() + p * n;
            for (int64_t j = 0; j < n; ++j)
                ci[j] += av * bp[j];
        }
    }
}

void
legacy_gemm_ta(const Tensor &a, const Tensor &b, Tensor &c)
{
    const int64_t k = a.rows(), m = a.cols(), n = b.cols();
    c.fill_zero();
    for (int64_t p = 0; p < k; ++p) {
        const float *ap = a.data() + p * m;
        const float *bp = b.data() + p * n;
        for (int64_t i = 0; i < m; ++i) {
            const float av = ap[i];
            if (av == 0.0f)
                continue;
            float *ci = c.data() + i * n;
            for (int64_t j = 0; j < n; ++j)
                ci[j] += av * bp[j];
        }
    }
}

void
legacy_gemm_tb(const Tensor &a, const Tensor &b, Tensor &c)
{
    const int64_t m = a.rows(), k = a.cols(), n = b.rows();
    for (int64_t i = 0; i < m; ++i) {
        const float *ai = a.data() + i * k;
        float *ci = c.data() + i * n;
        for (int64_t j = 0; j < n; ++j) {
            const float *bj = b.data() + j * k;
            float acc = 0.0f;
            for (int64_t p = 0; p < k; ++p)
                acc += ai[p] * bj[p];
            ci[j] = acc;
        }
    }
}

void
legacy_aggregate_forward(const sample::LayerBlock &block,
                         const std::vector<float> &weights,
                         const Tensor &in, Tensor &out)
{
    const int64_t dim = in.cols();
    out.fill_zero();
    for (int64_t t = 0; t < block.num_targets(); ++t) {
        float *dst = out.data() + t * dim;
        for (graph::EdgeId e = block.indptr[t]; e < block.indptr[t + 1];
             ++e) {
            const graph::NodeId v = block.sources[e];
            const float w = weights[static_cast<size_t>(e)];
            const float *src = in.data() + v * dim;
            for (int64_t c = 0; c < dim; ++c)
                dst[c] += w * src[c];
        }
    }
}

void
legacy_aggregate_backward(const sample::LayerBlock &block,
                          const std::vector<float> &weights,
                          const Tensor &grad_out, Tensor &grad_in)
{
    const int64_t dim = grad_out.cols();
    for (int64_t t = 0; t < block.num_targets(); ++t) {
        const float *gout = grad_out.data() + t * dim;
        for (graph::EdgeId e = block.indptr[t]; e < block.indptr[t + 1];
             ++e) {
            const graph::NodeId v = block.sources[e];
            const float w = weights[static_cast<size_t>(e)];
            float *gin = grad_in.data() + v * dim;
            for (int64_t c = 0; c < dim; ++c)
                gin[c] += w * gout[c];
        }
    }
}

void
legacy_aggregate_backward_weights(const sample::LayerBlock &block,
                                  const Tensor &in,
                                  const Tensor &grad_out,
                                  std::vector<float> &grad_weights)
{
    grad_weights.assign(static_cast<size_t>(block.num_edges()), 0.0f);
    const int64_t dim = in.cols();
    for (int64_t t = 0; t < block.num_targets(); ++t) {
        const float *gout = grad_out.data() + t * dim;
        for (graph::EdgeId e = block.indptr[t]; e < block.indptr[t + 1];
             ++e) {
            const graph::NodeId v = block.sources[e];
            const float *src = in.data() + v * dim;
            float acc = 0.0f;
            for (int64_t c = 0; c < dim; ++c)
                acc += gout[c] * src[c];
            grad_weights[static_cast<size_t>(e)] = acc;
        }
    }
}

// ------------------------------------------------------------- helpers

bool
bitwise_equal(const Tensor &x, const Tensor &y)
{
    return x.rows() == y.rows() && x.cols() == y.cols() &&
           std::memcmp(x.data(), y.data(),
                       static_cast<size_t>(x.numel()) * sizeof(float)) ==
               0;
}

/** FNV-1a over a tensor's raw bytes (same constants as hotpath_test). */
uint64_t
tensor_hash(const Tensor &x)
{
    uint64_t h = 0xCBF29CE484222325ULL;
    const auto *bytes = reinterpret_cast<const unsigned char *>(x.data());
    const size_t n = static_cast<size_t>(x.numel()) * sizeof(float);
    for (size_t i = 0; i < n; ++i) {
        h ^= bytes[i];
        h *= 0x100000001B3ULL;
    }
    return h;
}

/** Random tensor with a sprinkling of exact zeros (zero-skip paths). */
Tensor
random_with_zeros(int64_t rows, int64_t cols, util::Rng &rng)
{
    Tensor t = Tensor::randn(rows, cols, rng, 1.0f);
    for (int64_t i = 0; i < t.numel(); i += 7)
        t.data()[i] = 0.0f;
    return t;
}

/** A small multi-degree block over 6 source rows (0..5). */
sample::LayerBlock
small_block()
{
    sample::LayerBlock blk;
    blk.targets = {0, 1, 2, 3};
    blk.indptr = {0, 3, 5, 5, 9};
    blk.sources = {0, 3, 5, 1, 2, 2, 3, 4, 5};
    return blk;
}

/** A larger random block: @p targets targets, @p deg edges each. */
sample::LayerBlock
random_block(int64_t targets, int64_t deg, int64_t num_sources,
             util::Rng &rng)
{
    sample::LayerBlock blk;
    blk.indptr = {0};
    for (int64_t t = 0; t < targets; ++t) {
        blk.targets.push_back(t % num_sources);
        for (int64_t d = 0; d < deg; ++d)
            blk.sources.push_back(static_cast<graph::NodeId>(
                rng.next_below(static_cast<uint64_t>(num_sources))));
        blk.indptr.push_back(
            static_cast<graph::EdgeId>(blk.sources.size()));
    }
    return blk;
}

const int kWidths[] = {1, 4, 8};

// -------------------------------------------------- GEMM bit-identity

TEST(ComputeKernels, GemmMatchesLegacyBitwiseAtAnyWidth)
{
    util::Rng rng(11);
    // Shapes straddle the 4x16 tile: tiny, tail-heavy, and tile-exact.
    const int64_t shapes[][3] = {
        {1, 1, 1}, {5, 3, 2}, {33, 17, 29}, {64, 32, 48}, {70, 96, 130}};
    for (const auto &s : shapes) {
        const Tensor a = random_with_zeros(s[0], s[1], rng);
        const Tensor b = Tensor::randn(s[1], s[2], rng, 1.0f);
        Tensor want(s[0], s[2]);
        legacy_gemm(a, b, want);
        for (int threads : kWidths) {
            KernelEngine engine(threads);
            Tensor got(s[0], s[2]);
            engine.gemm(a, b, got);
            EXPECT_TRUE(bitwise_equal(want, got))
                << s[0] << "x" << s[1] << "x" << s[2] << " at "
                << threads << " threads";
        }
    }
}

TEST(ComputeKernels, GemmTaMatchesLegacyBitwiseAtAnyWidth)
{
    util::Rng rng(12);
    const int64_t shapes[][3] = {{3, 5, 2}, {17, 33, 29}, {96, 40, 64}};
    for (const auto &s : shapes) {
        // A is [k x m] here; C = A^T B is [m x n].
        const Tensor a = random_with_zeros(s[0], s[1], rng);
        const Tensor b = Tensor::randn(s[0], s[2], rng, 1.0f);
        Tensor want(s[1], s[2]);
        legacy_gemm_ta(a, b, want);
        for (int threads : kWidths) {
            KernelEngine engine(threads);
            Tensor got(s[1], s[2]);
            engine.gemm_ta(a, b, got);
            EXPECT_TRUE(bitwise_equal(want, got))
                << s[0] << "x" << s[1] << "x" << s[2] << " at "
                << threads << " threads";
        }
    }
}

TEST(ComputeKernels, GemmTbMatchesLegacyBitwiseAtAnyWidth)
{
    util::Rng rng(13);
    const int64_t shapes[][3] = {{2, 3, 5}, {29, 17, 33}, {64, 80, 96}};
    for (const auto &s : shapes) {
        // B is [n x k]; C = A B^T is [m x n].
        const Tensor a = random_with_zeros(s[0], s[1], rng);
        const Tensor b = random_with_zeros(s[2], s[1], rng);
        Tensor want(s[0], s[2]);
        legacy_gemm_tb(a, b, want);
        for (int threads : kWidths) {
            KernelEngine engine(threads);
            Tensor got(s[0], s[2]);
            engine.gemm_tb(a, b, got);
            EXPECT_TRUE(bitwise_equal(want, got))
                << s[0] << "x" << s[1] << "x" << s[2] << " at "
                << threads << " threads";
        }
    }
}

// ------------------------------------------------------ fused epilogue

TEST(ComputeKernels, FusedEpilogueEqualsSeparateOpsBitwise)
{
    util::Rng rng(14);
    const Tensor a = random_with_zeros(37, 21, rng);
    const Tensor b = Tensor::randn(21, 19, rng, 1.0f);
    const Tensor bias = Tensor::randn(1, 19, rng, 1.0f);

    // Reference: the historical three-kernel sequence.
    Tensor want(37, 19);
    compute::gemm(a, b, want);
    compute::add_bias(want, bias);
    compute::relu_forward(want);

    for (int threads : kWidths) {
        KernelEngine engine(threads);
        Tensor got(37, 19);
        engine.gemm_fused(a, b, &bias, Activation::kRelu, 0.0f, got);
        EXPECT_TRUE(bitwise_equal(want, got)) << threads << " threads";
    }

    // LeakyReLU epilogue.
    Tensor want_leaky(37, 19);
    compute::gemm(a, b, want_leaky);
    compute::add_bias(want_leaky, bias);
    compute::leaky_relu_forward(want_leaky, 0.2f);
    KernelEngine engine(4);
    Tensor got_leaky(37, 19);
    engine.gemm_fused(a, b, &bias, Activation::kLeakyRelu, 0.2f,
                      got_leaky);
    EXPECT_TRUE(bitwise_equal(want_leaky, got_leaky));

    // No-bias, no-activation degenerates to plain gemm.
    Tensor want_plain(37, 19);
    compute::gemm(a, b, want_plain);
    Tensor got_plain(37, 19);
    engine.gemm_fused(a, b, nullptr, Activation::kNone, 0.0f, got_plain);
    EXPECT_TRUE(bitwise_equal(want_plain, got_plain));
}

TEST(ComputeKernels, ActivationBiasBackwardEqualsSeparateOpsBitwise)
{
    util::Rng rng(15);
    Tensor pre = Tensor::randn(23, 11, rng, 1.0f);
    Tensor relu_out = pre;
    compute::relu_forward(relu_out);
    const Tensor grad0 = Tensor::randn(23, 11, rng, 1.0f);

    // Reference: relu_backward then the historical bias column sums.
    Tensor want_grad = grad0;
    compute::relu_backward(relu_out, want_grad);
    Tensor want_bias(1, 11);
    for (int64_t r = 0; r < want_grad.rows(); ++r)
        for (int64_t c = 0; c < want_grad.cols(); ++c)
            want_bias.at(0, c) += want_grad.at(r, c);

    for (int threads : kWidths) {
        KernelEngine engine(threads);
        Tensor got_grad = grad0;
        Tensor got_bias(1, 11);
        engine.activation_bias_backward(relu_out, Activation::kRelu,
                                        0.0f, got_grad, &got_bias);
        EXPECT_TRUE(bitwise_equal(want_grad, got_grad))
            << threads << " threads";
        EXPECT_TRUE(bitwise_equal(want_bias, got_bias))
            << threads << " threads";
    }

    // LeakyReLU mask keys off the *pre*-activation tensor.
    Tensor want_leaky = grad0;
    compute::leaky_relu_backward(pre, 0.2f, want_leaky);
    KernelEngine engine(4);
    Tensor got_leaky = grad0;
    engine.activation_bias_backward(pre, Activation::kLeakyRelu, 0.2f,
                                    got_leaky, nullptr);
    EXPECT_TRUE(bitwise_equal(want_leaky, got_leaky));
}

// The regression this PR fixes: bias_backward used to *accumulate* into
// whatever grad_bias already held, silently doubling bias gradients for
// any caller that reused the output tensor.
TEST(ComputeKernels, BiasBackwardOverwritesStaleContents)
{
    util::Rng rng(16);
    const Tensor grad = Tensor::randn(9, 5, rng, 1.0f);
    Tensor want(1, 5);
    for (int64_t r = 0; r < grad.rows(); ++r)
        for (int64_t c = 0; c < grad.cols(); ++c)
            want.at(0, c) += grad.at(r, c);

    Tensor got(1, 5);
    got.fill(123.456f); // stale garbage that must not leak through
    compute::bias_backward(grad, got);
    EXPECT_TRUE(bitwise_equal(want, got));

    KernelEngine engine(4);
    got.fill(-77.0f);
    engine.bias_backward(grad, got);
    EXPECT_TRUE(bitwise_equal(want, got));
}

// ------------------------------------------------------- aggregation

TEST(ComputeKernels, AggregateForwardMatchesLegacyBitwiseAtAnyWidth)
{
    util::Rng rng(17);
    const sample::LayerBlock blk = random_block(64, 9, 100, rng);
    const Tensor in = Tensor::randn(100, 33, rng, 1.0f);
    std::vector<float> weights(static_cast<size_t>(blk.num_edges()));
    for (float &w : weights)
        w = static_cast<float>(rng.next_double());

    Tensor want(blk.num_targets(), 33);
    legacy_aggregate_forward(blk, weights, in, want);
    for (int threads : kWidths) {
        KernelEngine engine(threads);
        Tensor got(blk.num_targets(), 33);
        engine.aggregate_forward(blk, weights, in, got);
        EXPECT_TRUE(bitwise_equal(want, got)) << threads << " threads";
    }
}

TEST(ComputeKernels, AggregateBackwardMatchesLegacyBitwiseAtAnyWidth)
{
    util::Rng rng(18);
    const sample::LayerBlock blk = random_block(64, 9, 100, rng);
    const Tensor grad_out = Tensor::randn(blk.num_targets(), 33, rng,
                                          1.0f);
    std::vector<float> weights(static_cast<size_t>(blk.num_edges()));
    for (float &w : weights)
        w = static_cast<float>(rng.next_double());

    // The scatter accumulates into existing contents; seed both sides
    // with the same nonzero tensor to pin that behaviour too.
    const Tensor seed = Tensor::randn(100, 33, rng, 0.5f);
    Tensor want = seed;
    legacy_aggregate_backward(blk, weights, grad_out, want);
    for (int threads : kWidths) {
        KernelEngine engine(threads);
        Tensor got = seed;
        engine.aggregate_backward(blk, weights, grad_out, got);
        EXPECT_TRUE(bitwise_equal(want, got)) << threads << " threads";
    }
}

TEST(ComputeKernels, AggregateBackwardWeightsMatchesLegacyBitwise)
{
    util::Rng rng(19);
    const sample::LayerBlock blk = random_block(48, 7, 80, rng);
    const Tensor in = Tensor::randn(80, 21, rng, 1.0f);
    const Tensor grad_out = Tensor::randn(blk.num_targets(), 21, rng,
                                          1.0f);

    std::vector<float> want;
    legacy_aggregate_backward_weights(blk, in, grad_out, want);
    for (int threads : kWidths) {
        KernelEngine engine(threads);
        std::vector<float> got;
        engine.aggregate_backward_weights(blk, in, grad_out, got);
        ASSERT_EQ(want.size(), got.size());
        EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                                 want.size() * sizeof(float)))
            << threads << " threads";
    }
}

// ---------------------------------------------- reverse CSR / validate

TEST(ComputeKernels, ReverseCsrIsTheExactAdjoint)
{
    const sample::LayerBlock blk = small_block();
    const sample::ReverseCsr &rc = blk.reverse_csr();

    // num_sources covers the highest source ID.
    EXPECT_EQ(rc.num_sources, 6);
    ASSERT_EQ(rc.indptr.size(), 7u);
    EXPECT_EQ(rc.indptr.front(), 0);
    EXPECT_EQ(rc.indptr.back(), blk.num_edges());

    // Every forward edge appears exactly once, under its source, with
    // the matching target row, in ascending edge-ID order.
    std::vector<int> seen(static_cast<size_t>(blk.num_edges()), 0);
    for (int64_t v = 0; v < rc.num_sources; ++v) {
        for (graph::EdgeId i = rc.indptr[v]; i < rc.indptr[v + 1]; ++i) {
            const graph::EdgeId e = rc.edge_ids[i];
            if (i > rc.indptr[v]) {
                EXPECT_LT(rc.edge_ids[i - 1], e) << "source " << v;
            }
            ASSERT_GE(e, 0);
            ASSERT_LT(e, blk.num_edges());
            ++seen[static_cast<size_t>(e)];
            EXPECT_EQ(blk.sources[e], v);
            const graph::NodeId t = rc.edge_targets[i];
            EXPECT_GE(e, blk.indptr[t]);
            EXPECT_LT(e, blk.indptr[t + 1]);
        }
    }
    for (int count : seen)
        EXPECT_EQ(count, 1);

    // The cache hands back the same structure on the next call.
    EXPECT_EQ(&blk.reverse_csr(), &rc);
}

TEST(ComputeKernels, ValidateAcceptsEmptyAndInRangeBlocks)
{
    sample::LayerBlock empty;
    empty.validate(0); // must not die
    const sample::LayerBlock blk = small_block();
    blk.validate(6);
    blk.validate(100);
}

TEST(ComputeKernelsDeathTest, ValidateRejectsOutOfRangeSource)
{
    const sample::LayerBlock blk = small_block();
    EXPECT_DEATH(blk.validate(5), "source local ID outside input rows");
}

TEST(ComputeKernelsDeathTest, AggregateStillDiesOnBadBlock)
{
    // The per-edge FASTGL_CHECK moved into validate(); the aggregate
    // entry points must still refuse a block whose sources point past
    // the input rows.
    sample::LayerBlock blk;
    blk.targets = {0};
    blk.indptr = {0, 1};
    blk.sources = {3};
    const std::vector<float> weights = {1.0f};
    const Tensor in(2, 4);
    Tensor out(1, 4);
    EXPECT_DEATH(compute::aggregate_forward(blk, weights, in, out),
                 "source local ID outside input rows");
}

// ------------------------------------------------------- golden hashes

// FNV-1a hashes of kernel outputs on fixed seeded inputs, captured from
// the pre-engine implementation. They pin the exact bit patterns across
// refactors of the blocked kernels.
TEST(ComputeKernels, GoldenHashesPinPreEngineOutputs)
{
    util::Rng rng(2024);
    const Tensor a = random_with_zeros(40, 24, rng);
    const Tensor b = Tensor::randn(24, 32, rng, 1.0f);
    const Tensor bt = random_with_zeros(32, 24, rng);

    Tensor c(40, 32);
    KernelEngine engine(4);
    engine.gemm(a, b, c);
    EXPECT_EQ(tensor_hash(c), 0x805DFD6D5189A6D7ULL);

    Tensor cta(24, 32); // A^T: [40x24]^T x [40x32]
    const Tensor b2 = Tensor::randn(40, 32, rng, 1.0f);
    engine.gemm_ta(a, b2, cta);
    EXPECT_EQ(tensor_hash(cta), 0xFF9AFF0873A283AFULL);

    Tensor ctb(40, 32);
    engine.gemm_tb(a, bt, ctb);
    EXPECT_EQ(tensor_hash(ctb), 0x8726B0072E1430F4ULL);

    const sample::LayerBlock blk = random_block(32, 5, 50, rng);
    const Tensor feats = Tensor::randn(50, 16, rng, 1.0f);
    std::vector<float> weights(static_cast<size_t>(blk.num_edges()));
    for (float &w : weights)
        w = static_cast<float>(rng.next_double());
    Tensor agg(blk.num_targets(), 16);
    engine.aggregate_forward(blk, weights, feats, agg);
    EXPECT_EQ(tensor_hash(agg), 0xF2182157892DA518ULL);

    Tensor gin(50, 16);
    engine.aggregate_backward(blk, weights, agg, gin);
    EXPECT_EQ(tensor_hash(gin), 0x83D46EBA3A230F8FULL);
}

// ------------------------------------------------- layers on an engine

/** Scalar loss: <forward(input), projection> (layers_test idiom). */
double
projected_loss(compute::GnnLayer &layer, const sample::LayerBlock &blk,
               const Tensor &input, const Tensor &projection)
{
    Tensor out = layer.forward(blk, input);
    double acc = 0.0;
    for (int64_t i = 0; i < out.rows(); ++i)
        for (int64_t j = 0; j < out.cols(); ++j)
            acc += double(out.at(i, j)) * double(projection.at(i, j));
    return acc;
}

sample::LayerBlock
gradcheck_block()
{
    sample::LayerBlock blk;
    blk.targets = {0, 1, 2};
    blk.indptr = {0, 3, 5, 8};
    blk.sources = {0, 3, 4, 1, 2, 2, 3, 4};
    return blk;
}

/**
 * Finite-difference check of the input gradient for a layer running
 * entirely on a multi-threaded engine — covers the fused epilogues and
 * the reverse-CSR backward end to end.
 */
void
check_layer_input_gradient(compute::GnnLayer &layer)
{
    KernelEngine engine(4);
    layer.set_engine(&engine);
    const sample::LayerBlock blk = gradcheck_block();
    util::Rng rng(505);
    Tensor input = Tensor::randn(5, layer.in_dim(), rng, 1.0f);
    const Tensor projection =
        Tensor::randn(3, layer.out_dim(), rng, 1.0f);

    layer.forward(blk, input);
    const Tensor analytic = layer.backward(blk, projection);

    constexpr float kEps = 1e-2f;
    const int64_t stride = std::max<int64_t>(1, input.numel() / 7);
    for (int64_t flat = 0; flat < input.numel(); flat += stride) {
        const int64_t r = flat / input.cols();
        const int64_t c = flat % input.cols();
        const float saved = input.at(r, c);
        input.at(r, c) = saved + kEps;
        const double up = projected_loss(layer, blk, input, projection);
        input.at(r, c) = saved - kEps;
        const double down =
            projected_loss(layer, blk, input, projection);
        input.at(r, c) = saved;
        const double numeric = (up - down) / (2.0 * kEps);
        const double want = analytic.at(r, c);
        const double scale =
            std::max({1.0, std::abs(numeric), std::abs(want)});
        EXPECT_NEAR(want, numeric, 0.05 * scale)
            << "element (" << r << "," << c << ")";
    }
}

TEST(ComputeKernels, GcnFusedPathPassesGradcheckOnParallelEngine)
{
    util::Rng rng(404);
    compute::GcnLayer layer(4, 3, true, rng);
    check_layer_input_gradient(layer);
}

TEST(ComputeKernels, GinFusedPathPassesGradcheckOnParallelEngine)
{
    util::Rng rng(404);
    compute::GinLayer layer(4, 3, true, rng);
    check_layer_input_gradient(layer);
}

TEST(ComputeKernels, GatPassesGradcheckOnParallelEngine)
{
    util::Rng rng(404);
    compute::GatLayer layer(4, 2, 3, true, rng);
    check_layer_input_gradient(layer);
}

/** Layers produce bit-identical outputs and grads at widths 1/4/8. */
TEST(ComputeKernels, LayerOutputsBitIdenticalAcrossEngineWidths)
{
    const sample::LayerBlock blk = gradcheck_block();
    Tensor ref_out, ref_grad;
    for (int threads : kWidths) {
        util::Rng rng(606); // same weights every width
        compute::GatLayer layer(6, 2, 4, true, rng);
        KernelEngine engine(threads);
        layer.set_engine(&engine);
        util::Rng drng(707);
        const Tensor input = Tensor::randn(5, 6, drng, 1.0f);
        const Tensor gout = Tensor::randn(3, 8, drng, 1.0f);
        const Tensor out = layer.forward(blk, input);
        const Tensor gin = layer.backward(blk, gout);
        if (threads == 1) {
            ref_out = out;
            ref_grad = gin;
        } else {
            EXPECT_TRUE(bitwise_equal(ref_out, out))
                << threads << " threads";
            EXPECT_TRUE(bitwise_equal(ref_grad, gin))
                << threads << " threads";
        }
    }
}

// ------------------------------------------------------------- stats

TEST(ComputeKernels, EngineRecordsMeasuredCounters)
{
    util::Rng rng(20);
    KernelEngine engine(2);
    const Tensor a = Tensor::randn(32, 16, rng, 1.0f);
    const Tensor b = Tensor::randn(16, 24, rng, 1.0f);
    Tensor c(32, 24);
    engine.gemm(a, b, c);
    EXPECT_EQ(engine.stats().gemm_calls, 1);
    EXPECT_DOUBLE_EQ(engine.stats().gemm_flops, 2.0 * 32 * 16 * 24);

    const sample::LayerBlock blk = small_block();
    const Tensor in = Tensor::randn(6, 8, rng, 1.0f);
    std::vector<float> w(static_cast<size_t>(blk.num_edges()), 1.0f);
    Tensor out(blk.num_targets(), 8);
    engine.aggregate_forward(blk, w, in, out);
    EXPECT_EQ(engine.stats().agg_calls, 1);
    EXPECT_EQ(engine.stats().agg_edges, blk.num_edges());
    EXPECT_GT(engine.stats().agg_bytes, 0u);
    EXPECT_GT(engine.stats().agg_bytes_per_edge(), 0.0);

    engine.reset_stats();
    EXPECT_EQ(engine.stats().gemm_calls, 0);
}

TEST(ComputeKernels, ParallelRowsCoversEveryRowExactlyOnce)
{
    KernelEngine engine(8);
    std::vector<int> hits(1000, 0);
    engine.parallel_rows(1000, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            ++hits[static_cast<size_t>(i)]; // disjoint chunks: no race
    });
    for (int h : hits)
        EXPECT_EQ(h, 1);
    // Degenerate counts.
    engine.parallel_rows(0, [&](int64_t, int64_t) { FAIL(); });
}

} // namespace
} // namespace fastgl
