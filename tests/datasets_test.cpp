/**
 * @file
 * Tests for the dataset registry: full-scale specs mirror the paper's
 * Table 6 and replicas preserve the relevant shape properties.
 */
#include <gtest/gtest.h>

#include "graph/datasets.h"

namespace fastgl {
namespace {

TEST(Datasets, RegistryCoversAllFive)
{
    EXPECT_EQ(graph::all_datasets().size(), 5u);
    EXPECT_EQ(graph::dataset_short_name(graph::DatasetId::kReddit), "RD");
    EXPECT_EQ(graph::dataset_short_name(graph::DatasetId::kProducts), "PR");
    EXPECT_EQ(graph::dataset_short_name(graph::DatasetId::kMag), "MAG");
    EXPECT_EQ(graph::dataset_short_name(graph::DatasetId::kIgbLarge),
              "IGB");
    EXPECT_EQ(graph::dataset_short_name(graph::DatasetId::kPapers100M),
              "PA");
}

TEST(Datasets, FullScaleSpecsMatchPaperTable6)
{
    const auto reddit = graph::full_scale_spec(graph::DatasetId::kReddit);
    EXPECT_EQ(reddit.nodes, 232965);
    EXPECT_EQ(reddit.feature_dim, 602);
    EXPECT_EQ(reddit.num_classes, 41);

    const auto papers =
        graph::full_scale_spec(graph::DatasetId::kPapers100M);
    EXPECT_GT(papers.nodes, 100000000);
    EXPECT_EQ(papers.feature_dim, 128);
    EXPECT_EQ(papers.num_classes, 172);
    EXPECT_EQ(papers.batch_size, 8000);

    const auto igb = graph::full_scale_spec(graph::DatasetId::kIgbLarge);
    EXPECT_EQ(igb.feature_dim, 1024);
    EXPECT_EQ(igb.num_classes, 19);
}

/** Replica loading, parameterized over all five datasets. */
class ReplicaProperty
    : public ::testing::TestWithParam<graph::DatasetId> {};

TEST_P(ReplicaProperty, ReplicaIsValidAndScaled)
{
    graph::ReplicaOptions opts;
    opts.size_factor = 0.1; // fast unit-test size
    opts.materialize_features = false;
    graph::Dataset ds = graph::load_replica(GetParam(), opts);

    EXPECT_TRUE(ds.graph.validate().empty()) << ds.graph.validate();
    EXPECT_GT(ds.graph.num_nodes(), 0);
    EXPECT_GT(ds.graph.num_edges(), 0);
    EXPECT_FALSE(ds.train_nodes.empty());
    EXPECT_GT(ds.batch_size, 0);
    EXPECT_GT(ds.scale, 0.0);
    EXPECT_LT(ds.scale, 1.0);

    // Feature dim and class count preserved from the full-scale spec.
    const auto full = graph::full_scale_spec(GetParam());
    EXPECT_EQ(ds.features.dim(), full.feature_dim);
    EXPECT_EQ(ds.features.num_classes(), full.num_classes);

    // Training nodes in range.
    for (graph::NodeId u : ds.train_nodes) {
        EXPECT_GE(u, 0);
        EXPECT_LT(u, ds.graph.num_nodes());
    }
}

TEST_P(ReplicaProperty, ReplicaIsDeterministic)
{
    graph::ReplicaOptions opts;
    opts.size_factor = 0.05;
    opts.materialize_features = false;
    graph::Dataset a = graph::load_replica(GetParam(), opts);
    graph::Dataset b = graph::load_replica(GetParam(), opts);
    EXPECT_EQ(a.graph.indices(), b.graph.indices());
    EXPECT_EQ(a.train_nodes, b.train_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, ReplicaProperty,
    ::testing::ValuesIn(graph::all_datasets()),
    [](const ::testing::TestParamInfo<graph::DatasetId> &info) {
        return graph::dataset_short_name(info.param);
    });

TEST(Datasets, SizeFactorScalesNodeCount)
{
    graph::ReplicaOptions small, large;
    small.size_factor = 0.05;
    small.materialize_features = false;
    large.size_factor = 0.2;
    large.materialize_features = false;
    graph::Dataset a =
        graph::load_replica(graph::DatasetId::kProducts, small);
    graph::Dataset b =
        graph::load_replica(graph::DatasetId::kProducts, large);
    EXPECT_GT(b.graph.num_nodes(), 2 * a.graph.num_nodes());
}

TEST(Datasets, RedditReplicaIsDensest)
{
    // The paper's Table 4 ordering depends on Reddit being far denser
    // than MAG/Papers100M.
    graph::ReplicaOptions opts;
    opts.size_factor = 0.1;
    opts.materialize_features = false;
    graph::Dataset rd =
        graph::load_replica(graph::DatasetId::kReddit, opts);
    graph::Dataset mag = graph::load_replica(graph::DatasetId::kMag, opts);
    EXPECT_GT(rd.graph.avg_degree(), mag.graph.avg_degree());
}

} // namespace
} // namespace fastgl
