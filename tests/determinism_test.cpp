/**
 * @file
 * Determinism guarantees of the epoch executors: the same
 * PipelineOptions seed must produce bit-identical EpochResult /
 * PhaseBreakdown numbers across runs, across executors, and across
 * AsyncPipeline thread counts — the property that makes the overlapped
 * executor a drop-in replacement for the sequential one.
 */
#include <gtest/gtest.h>

#include "core/async_pipeline.h"
#include "core/pipeline.h"
#include "graph/datasets.h"

namespace fastgl {
namespace {

const graph::Dataset &
products()
{
    static graph::Dataset ds = [] {
        graph::ReplicaOptions opts;
        opts.size_factor = 0.15;
        opts.materialize_features = false;
        return graph::load_replica(graph::DatasetId::kProducts, opts);
    }();
    return ds;
}

core::PipelineOptions
options_with_seed(uint64_t seed)
{
    core::PipelineOptions opts;
    opts.fw = core::framework_preset(core::Framework::kFastGL);
    opts.num_gpus = 2;
    opts.max_batches = 12;
    opts.reorder_window = 4;
    opts.seed = seed;
    return opts;
}

void
expect_identical(const core::EpochResult &a, const core::EpochResult &b)
{
    EXPECT_EQ(a.phases.sample, b.phases.sample);
    EXPECT_EQ(a.phases.id_map, b.phases.id_map);
    EXPECT_EQ(a.phases.io, b.phases.io);
    EXPECT_EQ(a.phases.compute, b.phases.compute);
    EXPECT_EQ(a.phases.allreduce, b.phases.allreduce);
    EXPECT_EQ(a.epoch_seconds, b.epoch_seconds);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.nodes_loaded, b.nodes_loaded);
    EXPECT_EQ(a.nodes_reused, b.nodes_reused);
    EXPECT_EQ(a.cache_hits, b.cache_hits);
    EXPECT_EQ(a.bytes_loaded, b.bytes_loaded);
    EXPECT_EQ(a.sampled_instances, b.sampled_instances);
    EXPECT_EQ(a.unique_nodes, b.unique_nodes);
}

TEST(Determinism, SequentialSameSeedSameNumbersAcrossRuns)
{
    const auto opts = options_with_seed(2024);
    core::Pipeline a(products(), opts);
    core::Pipeline b(products(), opts);
    for (int epoch = 0; epoch < 2; ++epoch)
        expect_identical(a.run_epoch(), b.run_epoch());
}

TEST(Determinism, AsyncSameSeedSameNumbersAcrossRuns)
{
    const auto opts = options_with_seed(2024);
    core::AsyncPipelineOptions async;
    async.sampler_threads = 4;
    core::AsyncPipeline a(products(), opts, async);
    core::AsyncPipeline b(products(), opts, async);
    for (int epoch = 0; epoch < 2; ++epoch)
        expect_identical(a.run_epoch(), b.run_epoch());
}

TEST(Determinism, AsyncMatchesSequentialAcrossThreadCounts)
{
    const auto opts = options_with_seed(99);
    core::Pipeline seq(products(), opts);
    const auto reference = seq.run_epoch();

    // The ISSUE's acceptance matrix: {1, 2, 8} sampler threads.
    for (int threads : {1, 2, 8}) {
        core::AsyncPipelineOptions async;
        async.sampler_threads = threads;
        core::AsyncPipeline pipe(products(), opts, async);
        expect_identical(reference, pipe.run_epoch());
    }
}

TEST(Determinism, BatchSamplingIsOrderIndependent)
{
    // Direct check of the per-batch seed derivation: sampling the same
    // batch through two independent sampler instances (as two producer
    // threads would) yields the same subgraph, regardless of what else
    // each instance sampled before.
    sample::NeighborSamplerOptions nopts;
    nopts.fanouts = {4, 4};
    sample::NeighborSampler first(products().graph, nopts);
    sample::NeighborSampler second(products().graph, nopts);

    std::vector<graph::NodeId> seeds_a = {1, 2, 3, 4};
    std::vector<graph::NodeId> seeds_b = {9, 10, 11};

    // Warp the second sampler's history before the comparison draw.
    (void)second.sample(seeds_b, 777);

    const auto sg_a = first.sample(seeds_a, 1234);
    const auto sg_b = second.sample(seeds_a, 1234);
    EXPECT_EQ(sg_a.nodes, sg_b.nodes);
    EXPECT_EQ(sg_a.instances, sg_b.instances);
    EXPECT_EQ(sg_a.edges_examined, sg_b.edges_examined);
    ASSERT_EQ(sg_a.blocks.size(), sg_b.blocks.size());
    for (size_t h = 0; h < sg_a.blocks.size(); ++h) {
        EXPECT_EQ(sg_a.blocks[h].indptr, sg_b.blocks[h].indptr);
        EXPECT_EQ(sg_a.blocks[h].sources, sg_b.blocks[h].sources);
    }
}

TEST(Determinism, DifferentSeedsProduceDifferentEpochs)
{
    core::Pipeline a(products(), options_with_seed(1));
    core::Pipeline b(products(), options_with_seed(2));
    // Not a correctness requirement per se, but if this fails the seed
    // plumbing is dead and the identity tests above prove nothing.
    EXPECT_NE(a.run_epoch().sampled_instances,
              b.run_epoch().sampled_instances);
}

TEST(Determinism, PhaseBreakdownStableAcrossEpochReplay)
{
    // Replaying a fresh pipeline after N epochs matches a twin that ran
    // the same N epochs: epoch indices, not shared-RNG call order,
    // drive the streams.
    const auto opts = options_with_seed(55);
    core::Pipeline a(products(), opts);
    core::Pipeline b(products(), opts);
    (void)a.run_epoch();
    (void)b.run_epoch();
    const auto ra = a.run_epoch();
    const auto rb = b.run_epoch();
    expect_identical(ra, rb);
    EXPECT_EQ(ra.phases.total(), rb.phases.total());
    EXPECT_EQ(ra.phases.sample_total(), rb.phases.sample_total());
}

} // namespace
} // namespace fastgl
