/**
 * @file
 * Edge-case coverage across modules: degenerate graphs, boundary batch
 * sizes, isolated nodes, single-class datasets — the inputs a downstream
 * user will eventually feed the library.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.h"
#include "core/trainer.h"
#include "graph/generators.h"
#include "match/match.h"
#include "sample/neighbor_sampler.h"
#include "sim/kernel_model.h"

namespace fastgl {
namespace {

TEST(EdgeCases, SamplerHandlesIsolatedSeeds)
{
    // Node 2 has no in-neighbours: its subgraph is just its self loop.
    graph::CsrGraph g({0, 1, 2, 2}, {1, 0});
    sample::NeighborSamplerOptions opts;
    opts.fanouts = {3, 3};
    sample::NeighborSampler sampler(g, opts);
    std::vector<graph::NodeId> seeds = {2};
    const auto sg = sampler.sample(seeds);
    EXPECT_EQ(sg.num_nodes(), 1);
    for (const auto &blk : sg.blocks) {
        ASSERT_EQ(blk.num_targets(), 1);
        EXPECT_EQ(blk.num_edges(), 1); // the self edge
        EXPECT_EQ(blk.sources[0], 0);
    }
}

TEST(EdgeCases, SamplerHandlesDuplicateSeeds)
{
    graph::CsrGraph g = graph::generate_ring(100, 2, 1);
    sample::NeighborSamplerOptions opts;
    opts.fanouts = {2};
    sample::NeighborSampler sampler(g, opts);
    std::vector<graph::NodeId> seeds = {5, 5, 7};
    const auto sg = sampler.sample(seeds);
    // Duplicate seeds collapse to one local ID.
    EXPECT_EQ(sg.num_seeds, 3);
    EXPECT_LT(sg.blocks[0].num_targets(), 3);
}

TEST(EdgeCases, SingleNodeBatch)
{
    graph::CsrGraph g = graph::generate_ring(50, 2, 2);
    sample::NeighborSamplerOptions opts;
    sample::NeighborSampler sampler(g, opts);
    std::vector<graph::NodeId> seeds = {25};
    const auto sg = sampler.sample(seeds);
    EXPECT_GE(sg.num_nodes(), 1);
    EXPECT_EQ(sg.num_seeds, 1);
}

TEST(EdgeCases, BatchSizeLargerThanTrainSet)
{
    std::vector<graph::NodeId> nodes = {1, 2, 3};
    sample::BatchSplitter splitter(nodes, 100, 1);
    EXPECT_EQ(splitter.num_batches(), 1);
    EXPECT_EQ(splitter.batch(0).size(), 3u);
}

TEST(EdgeCases, PipelineMaxBatchesBeyondEpochIsClamped)
{
    graph::ReplicaOptions ropts;
    ropts.size_factor = 0.05;
    ropts.materialize_features = false;
    const graph::Dataset ds =
        graph::load_replica(graph::DatasetId::kReddit, ropts);
    core::PipelineOptions opts;
    opts.fw = core::framework_preset(core::Framework::kDgl);
    opts.max_batches = 1000000;
    opts.num_gpus = 1;
    core::Pipeline pipe(ds, opts);
    const auto r = pipe.run_epoch();
    const int64_t expected =
        (int64_t(ds.train_nodes.size()) + ds.batch_size - 1) /
        ds.batch_size;
    EXPECT_EQ(r.batches, expected);
}

TEST(EdgeCases, PipelineMoreGpusThanBatches)
{
    graph::ReplicaOptions ropts;
    ropts.size_factor = 0.05;
    ropts.materialize_features = false;
    const graph::Dataset ds =
        graph::load_replica(graph::DatasetId::kReddit, ropts);
    core::PipelineOptions opts;
    opts.fw = core::framework_preset(core::Framework::kFastGL);
    opts.max_batches = 2;
    opts.num_gpus = 8;
    core::Pipeline pipe(ds, opts);
    const auto r = pipe.run_epoch();
    EXPECT_EQ(r.batches, 2);
    EXPECT_GT(r.epoch_seconds, 0.0);
}

TEST(EdgeCases, MatcherIdenticalConsecutiveBatches)
{
    match::Matcher matcher;
    match::NodeSet set({1, 2, 3});
    matcher.plan(set);
    const auto plan = matcher.plan(set);
    EXPECT_EQ(plan.load_count(), 0);
    EXPECT_EQ(plan.overlap_nodes, 3);
}

TEST(EdgeCases, MatcherDisjointConsecutiveBatches)
{
    match::Matcher matcher;
    matcher.plan(match::NodeSet({1, 2, 3}));
    const auto plan = matcher.plan(match::NodeSet({4, 5}));
    EXPECT_EQ(plan.load_count(), 2);
    EXPECT_EQ(plan.overlap_nodes, 0);
}

TEST(EdgeCases, KernelModelZeroWorkloads)
{
    const sim::KernelModel model{sim::rtx3090()};
    sim::AggregationWorkload w; // all zero
    const auto naive = model.aggregation_naive(w, 0.05, 0.2);
    EXPECT_GE(naive.seconds, 0.0);
    EXPECT_TRUE(std::isfinite(naive.seconds));

    sim::IdMapWorkload idmap; // all zero
    EXPECT_GE(model.id_map_fused(idmap), 0.0);
    EXPECT_GE(model.id_map_sync(idmap), model.id_map_fused(idmap));
    EXPECT_DOUBLE_EQ(model.sample_cpu(0), 0.0);
}

TEST(EdgeCases, TrainerWithTwoClasses)
{
    graph::Dataset ds;
    ds.id = graph::DatasetId::kReddit;
    ds.name = "tiny-binary";
    ds.graph = graph::generate_ring(200, 3, 4);
    ds.features = graph::FeatureStore(200, 8, 2, 3);
    ds.batch_size = 16;
    ds.scale = 0.001;
    for (graph::NodeId u = 0; u < 200; u += 2)
        ds.train_nodes.push_back(u);

    core::TrainerOptions opts;
    opts.fanouts = {3};
    opts.max_batches = 3;
    core::Trainer trainer(ds, opts);
    const auto stats = trainer.train_epoch();
    EXPECT_GT(stats.mean_loss, 0.0);
    EXPECT_LE(stats.mean_accuracy, 1.0);
}

TEST(EdgeCases, PhaseBreakdownAccumulates)
{
    core::PhaseBreakdown a, b;
    a.sample = 1.0;
    a.io = 2.0;
    b.sample = 0.5;
    b.compute = 3.0;
    b.allreduce = 0.25;
    a += b;
    EXPECT_DOUBLE_EQ(a.sample, 1.5);
    EXPECT_DOUBLE_EQ(a.total(), 1.5 + 2.0 + 3.0 + 0.25);
    EXPECT_DOUBLE_EQ(a.sample_total(), 1.5);
}

TEST(EdgeCases, EpochResultReuseFractionBounds)
{
    core::EpochResult r;
    EXPECT_DOUBLE_EQ(r.reuse_fraction(), 0.0); // empty: no division
    r.nodes_loaded = 30;
    r.nodes_reused = 50;
    r.cache_hits = 20;
    EXPECT_DOUBLE_EQ(r.reuse_fraction(), 0.7);
}

} // namespace
} // namespace fastgl
