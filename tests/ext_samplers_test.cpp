/**
 * @file
 * Tests for the extension samplers (paper Section 7: Fused-Map serves
 * "diverse sampling algorithms"): layer-wise importance sampling,
 * GraphSAINT node/edge subgraphs, ClusterGCN partition batches, and the
 * shared induced-subgraph builder.
 */
#include <gtest/gtest.h>

#include <unordered_set>

#include "compute/gnn_model.h"
#include "compute/loss.h"
#include "graph/generators.h"
#include "sample/cluster_sampler.h"
#include "sample/layer_sampler.h"
#include "sample/saint_sampler.h"
#include "sample/subgraph_inducer.h"
#include "util/rng.h"

namespace fastgl {
namespace {

const graph::CsrGraph &
test_graph()
{
    static graph::CsrGraph g = [] {
        graph::RmatParams params;
        params.num_nodes = 6000;
        params.num_edges = 60000;
        params.seed = 55;
        return graph::generate_rmat(params);
    }();
    return g;
}

/** Shared structural checks for any SampledSubgraph. */
void
check_structure(const sample::SampledSubgraph &sg)
{
    std::unordered_set<graph::NodeId> uniq;
    for (graph::NodeId u : sg.nodes)
        ASSERT_TRUE(uniq.insert(u).second);
    for (const auto &blk : sg.blocks) {
        ASSERT_EQ(blk.indptr.front(), 0);
        ASSERT_EQ(blk.indptr.back(), blk.num_edges());
        for (graph::NodeId src : blk.sources) {
            ASSERT_GE(src, 0);
            ASSERT_LT(src, sg.num_nodes());
        }
    }
    ASSERT_EQ(sg.id_map.uniques, sg.num_nodes());
    ASSERT_GE(sg.id_map.probes, sg.id_map.uniques);
    ASSERT_GT(sg.instances, 0);
}

TEST(SubgraphInducer, KeepsOnlyInSetEdges)
{
    const auto &g = test_graph();
    std::vector<graph::NodeId> members = {1, 2, 3, 4, 5, 100, 200};
    sample::FusedHashTable table(16);
    const auto sg = sample::induce_subgraph(g, members, 2, table);
    check_structure(sg);
    EXPECT_EQ(sg.num_nodes(), 7);
    EXPECT_EQ(sg.num_seeds, 7);
    ASSERT_EQ(sg.blocks.size(), 2u);

    const std::unordered_set<graph::NodeId> set(members.begin(),
                                                members.end());
    const auto &blk = sg.blocks[0];
    for (int64_t t = 0; t < blk.num_targets(); ++t) {
        const graph::NodeId gu = sg.nodes[size_t(t)];
        for (graph::EdgeId e = blk.indptr[t]; e < blk.indptr[t + 1];
             ++e) {
            const graph::NodeId gv = sg.nodes[size_t(blk.sources[e])];
            EXPECT_TRUE(set.count(gv));
            if (gv != gu) {
                // Must be a real graph edge.
                const auto nbrs = g.neighbors(gu);
                EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), gv) !=
                            nbrs.end());
            }
        }
    }
}

TEST(SubgraphInducer, DuplicateMembersCollapse)
{
    const auto &g = test_graph();
    std::vector<graph::NodeId> members = {7, 7, 7, 8};
    sample::FusedHashTable table(8);
    const auto sg = sample::induce_subgraph(g, members, 1, table);
    EXPECT_EQ(sg.num_nodes(), 2);
    EXPECT_EQ(sg.instances, 4); // all member instances counted
}

TEST(LayerSampler, RespectsLayerBudgets)
{
    const auto &g = test_graph();
    sample::LayerSamplerOptions opts;
    opts.layer_sizes = {128, 64, 32};
    opts.seed = 4;
    sample::LayerSampler sampler(g, opts);
    std::vector<graph::NodeId> seeds = {1, 10, 20, 30};
    const auto sg = sampler.sample(seeds);
    check_structure(sg);
    ASSERT_EQ(sg.blocks.size(), 3u);
    EXPECT_EQ(sg.num_seeds, 4);

    // Per-hop unique growth is bounded by the budget: nodes after hop h
    // grow by at most layer_sizes[hops-1-h].
    int64_t prev = sg.num_seeds;
    for (int h = 0; h < 3; ++h) {
        const int64_t budget = opts.layer_sizes[size_t(2 - h)];
        const int64_t now = sg.blocks[size_t(h)].num_targets();
        EXPECT_LE(now - prev, budget) << "hop " << h;
        prev = now;
    }
    EXPECT_LE(sg.num_nodes() - prev,
              int64_t(opts.layer_sizes.front()));
}

TEST(LayerSampler, MonotoneFrontierWorksWithGnnModel)
{
    const auto &g = test_graph();
    sample::LayerSamplerOptions opts;
    opts.layer_sizes = {96, 48};
    opts.seed = 5;
    sample::LayerSampler sampler(g, opts);
    std::vector<graph::NodeId> seeds = {2, 4, 6, 8};
    const auto sg = sampler.sample(seeds);

    compute::ModelConfig cfg;
    cfg.in_dim = 8;
    cfg.hidden_dim = 12;
    cfg.num_classes = 3;
    cfg.num_layers = 2;
    compute::GnnModel model(cfg);
    util::Rng rng(1);
    compute::Tensor x =
        compute::Tensor::randn(sg.num_nodes(), 8, rng, 1.0f);
    compute::Tensor logits = model.forward(sg, x);
    EXPECT_EQ(logits.rows(), 4);
    // And backward runs without structural violations.
    std::vector<int> labels = {0, 1, 2, 0};
    const auto loss = compute::softmax_cross_entropy(logits, labels);
    model.zero_grad();
    model.backward(sg, loss.grad_logits);
}

TEST(LayerSampler, Deterministic)
{
    const auto &g = test_graph();
    sample::LayerSamplerOptions opts;
    opts.seed = 6;
    sample::LayerSampler a(g, opts), b(g, opts);
    std::vector<graph::NodeId> seeds = {5, 15, 25};
    EXPECT_EQ(a.sample(seeds).nodes, b.sample(seeds).nodes);
}

class SaintMethodProperty
    : public ::testing::TestWithParam<sample::SaintMethod> {};

TEST_P(SaintMethodProperty, ProducesValidInducedSubgraph)
{
    const auto &g = test_graph();
    sample::SaintSamplerOptions opts;
    opts.method = GetParam();
    opts.budget = 500;
    opts.num_layers = 3;
    opts.seed = 7;
    sample::SaintSampler sampler(g, opts);
    const auto sg = sampler.sample();
    check_structure(sg);
    ASSERT_EQ(sg.blocks.size(), 3u);
    EXPECT_EQ(sg.num_seeds, sg.num_nodes()); // all members are seeds
    EXPECT_GT(sg.num_nodes(), 50);
    EXPECT_LE(sg.num_nodes(),
              opts.method == sample::SaintMethod::kNode
                  ? opts.budget
                  : 2 * opts.budget);
    // Blocks are identical at every layer.
    EXPECT_EQ(sg.blocks[0].sources, sg.blocks[2].sources);
}

TEST_P(SaintMethodProperty, ConsecutiveDrawsDiffer)
{
    const auto &g = test_graph();
    sample::SaintSamplerOptions opts;
    opts.method = GetParam();
    opts.budget = 300;
    opts.seed = 8;
    sample::SaintSampler sampler(g, opts);
    const auto a = sampler.sample();
    const auto b = sampler.sample();
    EXPECT_NE(a.nodes, b.nodes);
}

INSTANTIATE_TEST_SUITE_P(Methods, SaintMethodProperty,
                         ::testing::Values(sample::SaintMethod::kNode,
                                           sample::SaintMethod::kEdge),
                         [](const auto &info) {
                             return info.param ==
                                            sample::SaintMethod::kNode
                                        ? "Node"
                                        : "Edge";
                         });

TEST(ClusterSampler, BatchesAreUnionsOfPartitions)
{
    const auto &g = test_graph();
    sample::ClusterSamplerOptions opts;
    opts.num_parts = 8;
    opts.parts_per_batch = 2;
    opts.num_layers = 2;
    opts.seed = 9;
    sample::ClusterSampler sampler(g, opts);

    const int clusters[] = {1, 3};
    const auto sg = sampler.sample_clusters(clusters);
    check_structure(sg);
    const auto &parts = sampler.partitioning();
    const size_t expected = parts.members[1].size() +
                            parts.members[3].size();
    EXPECT_EQ(size_t(sg.num_nodes()), expected);
    for (graph::NodeId u : sg.nodes) {
        const int p = parts.part_of[size_t(u)];
        EXPECT_TRUE(p == 1 || p == 3);
    }
}

TEST(ClusterSampler, RandomBatchesAreValid)
{
    const auto &g = test_graph();
    sample::ClusterSamplerOptions opts;
    opts.num_parts = 16;
    opts.parts_per_batch = 3;
    opts.seed = 10;
    sample::ClusterSampler sampler(g, opts);
    for (int i = 0; i < 5; ++i) {
        const auto sg = sampler.sample();
        check_structure(sg);
        EXPECT_GT(sg.num_nodes(), 0);
    }
}

TEST(ClusterSampler, IntraClusterEdgesDominateCut)
{
    // The whole point of ClusterGCN: the induced batch retains most of
    // its members' edges. Verify the retained fraction beats random
    // grouping (2 of 16 parts -> random retention ~12.5%).
    const auto &g = test_graph();
    sample::ClusterSamplerOptions opts;
    opts.num_parts = 16;
    opts.parts_per_batch = 2;
    opts.seed = 11;
    sample::ClusterSampler sampler(g, opts);
    const auto sg = sampler.sample();
    int64_t member_degree = 0;
    for (graph::NodeId u : sg.nodes)
        member_degree += g.degree(u);
    const int64_t retained =
        sg.blocks[0].num_edges() - sg.num_nodes(); // minus self loops
    EXPECT_GT(double(retained) / double(member_degree), 0.125);
}

} // namespace
} // namespace fastgl
