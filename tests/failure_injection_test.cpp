/**
 * @file
 * Failure-injection tests: every FASTGL_CHECK guard must actually fire
 * on the invalid input it protects against (death tests), and the
 * CSV-export path must engage via the environment hook.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "compute/aggregate.h"
#include "compute/gnn_model.h"
#include "compute/loss.h"
#include "graph/csr_graph.h"
#include "graph/graph_builder.h"
#include "sample/batch_splitter.h"
#include "sample/fused_hash_table.h"
#include "util/table.h"

namespace fastgl {
namespace {

using ::testing::KilledBySignal;

TEST(FailureInjection, CsrRejectsInconsistentArrays)
{
    EXPECT_DEATH(
        { graph::CsrGraph bad({0, 5}, {1, 2}); },
        "indptr end must equal indices size");
}

TEST(FailureInjection, CsrRejectsNonZeroStart)
{
    EXPECT_DEATH({ graph::CsrGraph bad({1, 2}, {0}); },
                 "indptr must start at 0");
}

TEST(FailureInjection, BuilderRejectsOutOfRangeEndpoints)
{
    graph::GraphBuilder builder(4);
    EXPECT_DEATH(builder.add_edge(0, 9), "dst out of range");
    EXPECT_DEATH(builder.add_edge(-1, 2), "src out of range");
}

TEST(FailureInjection, FusedHashTableRejectsNegativeIds)
{
    sample::FusedHashTable table(8);
    EXPECT_DEATH(table.insert(-5), "negative global ID");
}

TEST(FailureInjection, FusedHashTablePanicsWhenFull)
{
    // The minimum table has 16 slots; a 17th distinct key cannot fit.
    EXPECT_DEATH(
        {
            sample::FusedHashTable table(1);
            for (graph::NodeId g = 0; g < 40; ++g)
                table.insert(g * 7919 + 3);
        },
        "hash table is full");
}

TEST(FailureInjection, BatchSplitterRejectsEmptyAndZeroBatch)
{
    std::vector<graph::NodeId> nodes = {1, 2, 3};
    EXPECT_DEATH(sample::BatchSplitter({}, 4, 1), "no training nodes");
    EXPECT_DEATH(sample::BatchSplitter(nodes, 0, 1),
                 "batch size must be positive");
}

TEST(FailureInjection, GnnModelRejectsUnresolvedConfig)
{
    compute::ModelConfig cfg; // in_dim/num_classes left at 0
    EXPECT_DEATH(compute::GnnModel model(cfg),
                 "must be resolved before building");
}

TEST(FailureInjection, AggregateRejectsShapeMismatch)
{
    sample::LayerBlock blk;
    blk.targets = {0};
    blk.indptr = {0, 1};
    blk.sources = {0};
    std::vector<float> weights = {1.0f};
    compute::Tensor in(1, 4);
    compute::Tensor out(2, 4); // wrong target count
    EXPECT_DEATH(compute::aggregate_forward(blk, weights, in, out),
                 "aggregate output shape mismatch");
}

TEST(FailureInjection, LossRejectsOutOfRangeLabel)
{
    compute::Tensor logits(1, 3);
    std::vector<int> labels = {7};
    EXPECT_DEATH(compute::softmax_cross_entropy(logits, labels),
                 "label out of range");
}

TEST(FailureInjection, CsvExportHookEngages)
{
    setenv("FASTGL_CSV_DIR", "/tmp", 1);
    util::TextTable table("Env Export Probe!");
    table.set_header({"a"});
    table.add_row({"1"});
    table.print();
    unsetenv("FASTGL_CSV_DIR");

    FILE *f = fopen("/tmp/env-export-probe.csv", "r");
    ASSERT_NE(f, nullptr);
    char buf[64];
    ASSERT_NE(fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "a\n");
    fclose(f);
    std::remove("/tmp/env-export-probe.csv");
}

} // namespace
} // namespace fastgl
