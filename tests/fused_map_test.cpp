/**
 * @file
 * Property tests for the Fused-Map lock-free hash table (Algorithm 2).
 *
 * The core claims: (1) every distinct global ID receives exactly one local
 * ID; (2) local IDs are dense in [0, uniques); (3) this holds under real
 * multi-threaded insertion; (4) linear probing resolves collisions.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "sample/fused_hash_table.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fastgl {
namespace {

TEST(FusedHashTable, SequentialInsertAssignsInsertionOrder)
{
    sample::FusedHashTable table(16);
    EXPECT_TRUE(table.insert(100));
    EXPECT_TRUE(table.insert(200));
    EXPECT_FALSE(table.insert(100)); // duplicate: Flag == True path
    EXPECT_TRUE(table.insert(300));
    EXPECT_EQ(table.size(), 3);
    EXPECT_EQ(table.lookup(100), 0);
    EXPECT_EQ(table.lookup(200), 1);
    EXPECT_EQ(table.lookup(300), 2);
    EXPECT_EQ(table.lookup(999), graph::kInvalidNode);
}

TEST(FusedHashTable, LocalToGlobalIsExactInverse)
{
    sample::FusedHashTable table(64);
    std::vector<graph::NodeId> inserted = {5, 17, 3, 99, 42, 7};
    for (graph::NodeId g : inserted)
        table.insert(g);
    const auto l2g = table.local_to_global();
    ASSERT_EQ(l2g.size(), inserted.size());
    EXPECT_EQ(l2g, inserted); // sequential: insertion order
    for (size_t i = 0; i < l2g.size(); ++i)
        EXPECT_EQ(table.lookup(l2g[i]), graph::NodeId(i));
}

TEST(FusedHashTable, ResetClearsEverything)
{
    sample::FusedHashTable table(16);
    table.insert(1);
    table.insert(2);
    table.reset(16);
    EXPECT_EQ(table.size(), 0);
    EXPECT_EQ(table.probes(), 0u); // before lookups, which also probe
    EXPECT_EQ(table.lookup(1), graph::kInvalidNode);
}

TEST(FusedHashTable, ResetGrowsCapacity)
{
    sample::FusedHashTable table(4);
    const size_t before = table.capacity();
    table.reset(100000);
    EXPECT_GT(table.capacity(), before);
}

TEST(FusedHashTable, CollisionsResolvedByLinearProbing)
{
    // Tiny table forces collisions; all keys must still be found.
    sample::FusedHashTable table(8);
    std::vector<graph::NodeId> keys;
    for (graph::NodeId g = 0; g < 12; ++g)
        keys.push_back(g * 1000 + 7);
    for (graph::NodeId g : keys)
        EXPECT_TRUE(table.insert(g));
    std::set<graph::NodeId> locals;
    for (graph::NodeId g : keys) {
        const graph::NodeId local = table.lookup(g);
        EXPECT_NE(local, graph::kInvalidNode);
        locals.insert(local);
    }
    // Dense bijection.
    EXPECT_EQ(int64_t(locals.size()), table.size());
    EXPECT_EQ(*locals.begin(), 0);
    EXPECT_EQ(*locals.rbegin(), table.size() - 1);
}

TEST(FusedHashTable, ProbesCounted)
{
    sample::FusedHashTable table(1024);
    table.insert(1);
    EXPECT_GE(table.probes(), 1u);
}

/** Concurrent property test, parameterized by thread count. */
class FusedMapConcurrency : public ::testing::TestWithParam<int> {};

TEST_P(FusedMapConcurrency, ParallelInsertIsDenseBijection)
{
    const int threads = GetParam();
    util::ThreadPool pool(threads);
    util::Rng rng(2024);

    // Instance stream with heavy duplication (like sampled neighbours).
    constexpr size_t kInstances = 200000;
    constexpr uint64_t kUniverse = 20000;
    std::vector<graph::NodeId> stream(kInstances);
    for (auto &g : stream)
        g = static_cast<graph::NodeId>(rng.next_below(kUniverse));

    std::unordered_set<graph::NodeId> distinct(stream.begin(),
                                               stream.end());

    sample::FusedHashTable table(kInstances);
    table.insert_stream_parallel(stream, pool);

    // (1) unique count is exact.
    ASSERT_EQ(table.size(), int64_t(distinct.size()));

    // (2) every inserted global resolves to a local in range, and the
    // mapping is injective.
    std::vector<bool> seen(distinct.size(), false);
    for (graph::NodeId g : distinct) {
        const graph::NodeId local = table.lookup(g);
        ASSERT_GE(local, 0);
        ASSERT_LT(local, table.size());
        ASSERT_FALSE(seen[static_cast<size_t>(local)])
            << "two globals share local " << local;
        seen[static_cast<size_t>(local)] = true;
    }

    // (3) local_to_global is the exact inverse.
    const auto l2g = table.local_to_global();
    for (size_t local = 0; local < l2g.size(); ++local) {
        ASSERT_NE(l2g[local], graph::kInvalidNode);
        ASSERT_EQ(table.lookup(l2g[local]), graph::NodeId(local));
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, FusedMapConcurrency,
                         ::testing::Values(1, 2, 4, 8));

TEST(FusedHashTable, ParallelAndSequentialAgreeOnUniqueCount)
{
    util::Rng rng(7);
    std::vector<graph::NodeId> stream(50000);
    for (auto &g : stream)
        g = static_cast<graph::NodeId>(rng.next_below(6000));

    sample::FusedHashTable seq(stream.size());
    seq.insert_stream(stream);

    util::ThreadPool pool(4);
    sample::FusedHashTable par(stream.size());
    par.insert_stream_parallel(stream, pool);

    EXPECT_EQ(seq.size(), par.size());
    // Same *set* of globals even if local IDs were raced differently.
    auto a = seq.local_to_global();
    auto b = par.local_to_global();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace fastgl
