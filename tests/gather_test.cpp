/**
 * @file
 * Tests for the batched feature-gather fast path: bitwise equality of
 * match::GatherEngine against the legacy per-row gather_row loop at
 * several thread widths (fuzzed over ragged batches and awkward
 * dimensions), golden hashes pinning the pre-engine gather output,
 * FrequencyHashmap equivalence against a std::unordered_map reference
 * and against the legacy dense two-pass presample ranking, hoisted
 * bounds validation death tests, exact StaticFeatureCache statistics
 * under concurrent engines, panel lifetime past engine destruction,
 * and the Tensor view-mode semantics the zero-copy handoff relies on.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <thread>
#include <unordered_map>
#include <vector>

#include "compute/tensor.h"
#include "graph/feature_store.h"
#include "match/feature_cache.h"
#include "match/gather_engine.h"
#include "sample/frequency_hashmap.h"
#include "util/rng.h"

namespace fastgl {
namespace {

using graph::FeatureStore;
using graph::NodeId;
using match::FeaturePanel;
using match::GatherEngine;
using match::StaticFeatureCache;
using sample::FrequencyHashmap;

uint64_t
fnv_bytes(const void *data, size_t bytes)
{
    uint64_t h = 0xCBF29CE484222325ULL;
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ULL;
    }
    return h;
}

/** The legacy gather: one gather_row call per node into a flat buffer. */
std::vector<float>
legacy_gather(const FeatureStore &store,
              const std::vector<NodeId> &nodes)
{
    std::vector<float> out(nodes.size() *
                           static_cast<size_t>(store.dim()));
    for (size_t i = 0; i < nodes.size(); ++i)
        store.gather_row(nodes[i], out.data() + i * store.dim());
    return out;
}

uint64_t
panel_hash(const FeaturePanel &panel)
{
    return fnv_bytes(panel.data(), static_cast<size_t>(panel.bytes()));
}

// ------------------------------------------------------ bit identity

TEST(GatherEngine, FuzzBitIdenticalToPerRowLoopAcrossWidths)
{
    util::Rng rng(0x6A7831);
    const std::vector<int> dims = {1, 7, 64, 257};
    const std::vector<int64_t> batch_sizes = {0, 1, 2, 33, 257, 1024};
    for (const bool materialized : {true, false}) {
        for (const int dim : dims) {
            const NodeId n = 400;
            FeatureStore store(n, dim, 5, 0xFEED + dim, materialized);
            for (const int64_t batch : batch_sizes) {
                std::vector<NodeId> nodes;
                nodes.reserve(static_cast<size_t>(batch));
                for (int64_t i = 0; i < batch; ++i)
                    nodes.push_back(static_cast<NodeId>(rng.next_below(
                        static_cast<uint64_t>(n)))); // repeats likely
                const std::vector<float> want =
                    legacy_gather(store, nodes);
                const uint64_t want_hash = fnv_bytes(
                    want.data(), want.size() * sizeof(float));
                for (const int threads : {1, 4, 8}) {
                    GatherEngine engine(threads);
                    FeaturePanel panel = engine.gather(store, nodes);
                    ASSERT_EQ(panel.rows(),
                              static_cast<int64_t>(nodes.size()));
                    ASSERT_EQ(panel.dim(), dim);
                    ASSERT_EQ(panel_hash(panel), want_hash)
                        << "dim=" << dim << " batch=" << batch
                        << " threads=" << threads
                        << " materialized=" << materialized;
                }
            }
        }
    }
}

TEST(GatherEngine, PanelReuseAcrossBatchesStaysIdentical)
{
    // The same engine (and therefore recycled arenas) across ragged
    // consecutive batches: stale bytes from a larger earlier panel
    // must never leak into a smaller later one.
    FeatureStore store(300, 31, 4, 9, true);
    GatherEngine engine(4);
    util::Rng rng(77);
    for (int round = 0; round < 20; ++round) {
        const int64_t batch = static_cast<int64_t>(
            rng.next_below(round % 2 == 0 ? 512 : 3));
        std::vector<NodeId> nodes;
        for (int64_t i = 0; i < batch; ++i)
            nodes.push_back(
                static_cast<NodeId>(rng.next_below(300)));
        const std::vector<float> want = legacy_gather(store, nodes);
        FeaturePanel panel = engine.gather(store, nodes);
        ASSERT_EQ(panel_hash(panel),
                  fnv_bytes(want.data(), want.size() * sizeof(float)));
    }
}

TEST(GatherEngine, StatsCountRowsBytesCalls)
{
    FeatureStore store(100, 16, 3, 1, true);
    GatherEngine engine;
    std::vector<NodeId> nodes(25);
    std::iota(nodes.begin(), nodes.end(), 10);
    engine.gather(store, nodes);
    engine.gather(store, nodes);
    EXPECT_EQ(engine.stats().calls, 2);
    EXPECT_EQ(engine.stats().rows, 50);
    EXPECT_EQ(engine.stats().bytes, 50u * 16u * sizeof(float));
    engine.reset_stats();
    EXPECT_EQ(engine.stats().calls, 0);
}

// ------------------------------------------------------- golden hashes
//
// FNV-1a hashes of the *legacy* per-row gather output on pinned
// configurations, captured before the engine existed. The engine (any
// width) must keep reproducing these exact bytes. g1 and g4 pin the
// same value on purpose: a materialised store's rows are the ones the
// virtual store regenerates, and that parity is part of the contract.

struct GoldenCase
{
    NodeId num_nodes;
    int dim;
    int classes;
    uint64_t seed;
    bool materialized;
    uint64_t want;
};

std::vector<NodeId>
golden_nodes(int which)
{
    std::vector<NodeId> nodes;
    switch (which) {
    case 1:
    case 4:
        for (int i = 0; i < 100; ++i)
            nodes.push_back((i * 37) % 500);
        break;
    case 2:
        for (int i = 0; i < 64; ++i)
            nodes.push_back((i * i + 3) % 256);
        break;
    case 3:
        for (int i = 0; i < 33; ++i)
            nodes.push_back(999 - i * 30);
        break;
    case 5:
        nodes = {9};
        break;
    }
    return nodes;
}

TEST(GatherEngine, GoldenHashesPinLegacyGatherOutput)
{
    const std::vector<GoldenCase> cases = {
        {500, 64, 7, 123, true, 13311373199250224535ULL},
        {256, 7, 3, 77, true, 16350564843628151889ULL},
        {1000, 257, 11, 2024, true, 6283258923631365797ULL},
        {500, 64, 7, 123, false, 13311373199250224535ULL},
        {10, 1, 2, 555, true, 4522040095442430293ULL},
    };
    for (size_t c = 0; c < cases.size(); ++c) {
        const GoldenCase &g = cases[c];
        FeatureStore store(g.num_nodes, g.dim, g.classes, g.seed,
                           g.materialized);
        const std::vector<NodeId> nodes =
            golden_nodes(static_cast<int>(c) + 1);
        // Legacy loop still matches its pinned hash...
        const std::vector<float> legacy = legacy_gather(store, nodes);
        EXPECT_EQ(fnv_bytes(legacy.data(),
                            legacy.size() * sizeof(float)),
                  g.want)
            << "golden case " << c + 1;
        // ...and the engine reproduces it at every width.
        for (const int threads : {1, 4, 8}) {
            GatherEngine engine(threads);
            EXPECT_EQ(panel_hash(engine.gather(store, nodes)), g.want)
                << "golden case " << c + 1 << " threads=" << threads;
        }
    }
}

// ------------------------------------------- hoisted bounds validation

using GatherDeathTest = ::testing::Test;

TEST(GatherDeathTest, ValidateNodesRejectsOutOfRangeIds)
{
    FeatureStore store(50, 8, 2, 3, true);
    const std::vector<NodeId> high = {0, 10, 50};
    const std::vector<NodeId> negative = {-1, 10, 20};
    EXPECT_DEATH(store.validate_nodes(high),
                 "gather node ID outside the feature matrix");
    EXPECT_DEATH(store.validate_nodes(negative),
                 "gather node ID outside the feature matrix");
    const std::vector<NodeId> fine = {0, 49, 17};
    store.validate_nodes(fine); // in range: no death
    store.validate_nodes({});   // empty: vacuously valid
}

TEST(GatherDeathTest, EngineGatherPanicsOnOutOfRangeNode)
{
    FeatureStore store(50, 8, 2, 3, true);
    const std::vector<NodeId> bad = {1, 2, 51};
    GatherEngine sequential;
    EXPECT_DEATH(sequential.gather(store, bad),
                 "gather node ID outside the feature matrix");
    GatherEngine parallel(4);
    EXPECT_DEATH(parallel.gather(store, bad),
                 "gather node ID outside the feature matrix");
}

TEST(GatherDeathTest, GatherRowKeepsItsPerRowCheck)
{
    FeatureStore store(50, 8, 2, 3, true);
    std::vector<float> row(8);
    EXPECT_DEATH(store.gather_row(50, row.data()),
                 "node out of range");
    EXPECT_DEATH(store.gather_row(-1, row.data()),
                 "node out of range");
}

// -------------------------------------------------- frequency hashmap

TEST(FrequencyHashmap, FuzzMatchesUnorderedMapReference)
{
    util::Rng rng(0xC0FFEE);
    for (int round = 0; round < 8; ++round) {
        // Deliberately tiny initial hint: growth is part of the fuzz.
        FrequencyHashmap freq(4);
        std::unordered_map<NodeId, int64_t> ref;
        std::vector<NodeId> first_seen;
        const int64_t stream_len = 1 + static_cast<int64_t>(
                                           rng.next_below(5000));
        const uint64_t id_range = 1 + rng.next_below(800);
        for (int64_t i = 0; i < stream_len; ++i) {
            const NodeId u =
                static_cast<NodeId>(rng.next_below(id_range));
            const bool fresh = freq.add(u);
            EXPECT_EQ(fresh, ref.find(u) == ref.end());
            if (fresh)
                first_seen.push_back(u);
            ++ref[u];
        }
        ASSERT_EQ(freq.size(), static_cast<int64_t>(ref.size()));
        EXPECT_EQ(freq.total(), stream_len);
        const auto uniques = freq.uniques();
        const auto counts = freq.counts();
        ASSERT_EQ(uniques.size(), first_seen.size());
        for (size_t i = 0; i < uniques.size(); ++i) {
            EXPECT_EQ(uniques[i], first_seen[i]) << "first-seen order";
            EXPECT_EQ(counts[i], ref.at(uniques[i])) << "exact count";
        }
    }
}

TEST(FrequencyHashmap, CollisionHeavyKeysStayExact)
{
    // IDs a power-of-two stride apart land in colliding slots for any
    // mask-based table; counts must survive the probing and growth.
    FrequencyHashmap freq(4);
    std::unordered_map<NodeId, int64_t> ref;
    for (int rep = 0; rep < 7; ++rep) {
        for (NodeId u = 0; u < 4096 * 64; u += 4096) {
            freq.add(u);
            ++ref[u];
        }
    }
    ASSERT_EQ(freq.size(), static_cast<int64_t>(ref.size()));
    const auto uniques = freq.uniques();
    const auto counts = freq.counts();
    for (size_t i = 0; i < uniques.size(); ++i)
        EXPECT_EQ(counts[i], ref.at(uniques[i]));
}

TEST(FrequencyHashmap, ResetClearsCountsAndOrder)
{
    FrequencyHashmap freq(8);
    freq.add(5);
    freq.add(5);
    freq.add(9);
    freq.reset(8);
    EXPECT_EQ(freq.size(), 0);
    EXPECT_EQ(freq.total(), 0);
    EXPECT_TRUE(freq.add(9));
    ASSERT_EQ(freq.size(), 1);
    EXPECT_EQ(freq.uniques()[0], 9);
    EXPECT_EQ(freq.counts()[0], 1);
}

TEST(FrequencyHashmap, DenseFrequenciesMatchSparseCounts)
{
    FrequencyHashmap freq(16);
    const std::vector<NodeId> stream = {3, 1, 3, 7, 1, 3};
    freq.add_stream(stream);
    const std::vector<int64_t> dense = freq.dense_frequencies(10);
    ASSERT_EQ(dense.size(), 10u);
    EXPECT_EQ(dense[3], 3);
    EXPECT_EQ(dense[1], 2);
    EXPECT_EQ(dense[7], 1);
    EXPECT_EQ(dense[0], 0);
}

TEST(FrequencyHashmap, FusedRankingIdenticalToLegacyTwoPass)
{
    // The one-pass count-while-dedup presample must rank exactly like
    // the legacy pipeline: dense count array -> iota -> stable_sort by
    // frequency descending. Fuzz over random traces, including nodes
    // that never appear (they must trail in ascending ID order).
    util::Rng rng(0x5EED);
    for (int round = 0; round < 10; ++round) {
        const NodeId num_nodes =
            16 + static_cast<NodeId>(rng.next_below(600));
        const int64_t stream_len =
            static_cast<int64_t>(rng.next_below(4000));
        FrequencyHashmap freq(8);
        std::vector<int64_t> dense(static_cast<size_t>(num_nodes), 0);
        for (int64_t i = 0; i < stream_len; ++i) {
            // Skewed stream: low IDs are hot, as in presampling.
            const NodeId u = static_cast<NodeId>(
                rng.next_below(static_cast<uint64_t>(num_nodes)) *
                rng.next_below(static_cast<uint64_t>(num_nodes)) /
                static_cast<uint64_t>(num_nodes));
            freq.add(u);
            ++dense[static_cast<size_t>(u)];
        }
        const std::vector<NodeId> legacy =
            match::presample_ranking(dense);
        const std::vector<NodeId> fused = match::presample_ranking(
            freq.uniques(), freq.counts(), num_nodes);
        ASSERT_EQ(fused, legacy) << "round " << round;
    }
}

// ------------------------------------------------ fused cache account

TEST(GatherEngine, CachedGatherMatchesLookupBatchAccounting)
{
    const NodeId n = 200;
    FeatureStore store(n, 24, 4, 11, true);
    std::vector<NodeId> ranking(static_cast<size_t>(n));
    std::iota(ranking.begin(), ranking.end(), 0);
    StaticFeatureCache fused_cache(n, ranking, 60);
    StaticFeatureCache legacy_cache(n, ranking, 60);

    util::Rng rng(31337);
    GatherEngine engine(4);
    for (int batch = 0; batch < 12; ++batch) {
        std::vector<NodeId> nodes;
        for (int i = 0; i < 150; ++i)
            nodes.push_back(static_cast<NodeId>(
                rng.next_below(static_cast<uint64_t>(n))));
        const int64_t legacy_misses = legacy_cache.lookup_batch(nodes);
        const auto result =
            engine.gather_cached(store, nodes, fused_cache);
        EXPECT_EQ(result.misses, legacy_misses);
        EXPECT_EQ(result.hits,
                  static_cast<int64_t>(nodes.size()) - legacy_misses);
        // The fused pass gathers the same bytes as a plain gather.
        const std::vector<float> want = legacy_gather(store, nodes);
        EXPECT_EQ(panel_hash(result.panel),
                  fnv_bytes(want.data(), want.size() * sizeof(float)));
    }
    // Published statistics match the legacy accounting exactly.
    EXPECT_EQ(fused_cache.hits(), legacy_cache.hits());
    EXPECT_EQ(fused_cache.misses(), legacy_cache.misses());
    EXPECT_EQ(engine.stats().cache_hits, fused_cache.hits());
    EXPECT_EQ(engine.stats().cache_misses, fused_cache.misses());
}

TEST(GatherEngine, CacheStatsExactUnderConcurrentEngines)
{
    // Several engines (each itself sharded) hammer one shared cache;
    // the atomic totals must come out exact, not approximately right.
    const NodeId n = 300;
    FeatureStore store(n, 16, 3, 21, true);
    std::vector<NodeId> ranking(static_cast<size_t>(n));
    std::iota(ranking.begin(), ranking.end(), 0);
    StaticFeatureCache cache(n, ranking, 100);

    constexpr int kWorkers = 4;
    constexpr int kBatches = 25;
    constexpr int kBatchSize = 97;
    std::vector<int64_t> worker_hits(kWorkers, 0);
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&, w] {
            GatherEngine engine(2);
            util::Rng rng(1000 + w);
            int64_t hits = 0;
            for (int b = 0; b < kBatches; ++b) {
                std::vector<NodeId> nodes;
                for (int i = 0; i < kBatchSize; ++i)
                    nodes.push_back(static_cast<NodeId>(
                        rng.next_below(static_cast<uint64_t>(n))));
                hits += engine.gather_cached(store, nodes, cache).hits;
            }
            worker_hits[static_cast<size_t>(w)] = hits;
        });
    }
    for (auto &t : workers)
        t.join();
    int64_t want_hits = 0;
    for (int64_t h : worker_hits)
        want_hits += h;
    const int64_t total =
        int64_t(kWorkers) * kBatches * kBatchSize;
    EXPECT_EQ(cache.hits(), want_hits);
    EXPECT_EQ(cache.hits() + cache.misses(), total);
}

// ------------------------------------------------------ panel lifetime

TEST(FeaturePanel, OutlivesItsEngine)
{
    FeatureStore store(64, 12, 2, 5, true);
    std::vector<NodeId> nodes = {1, 5, 63, 5};
    const std::vector<float> want = legacy_gather(store, nodes);
    FeaturePanel panel;
    {
        GatherEngine engine(4);
        panel = engine.gather(store, nodes);
    } // engine (and its worker pool) destroyed here
    ASSERT_EQ(panel.rows(), 4);
    EXPECT_EQ(panel_hash(panel),
              fnv_bytes(want.data(), want.size() * sizeof(float)));
    panel.release(); // arena returns to the orphaned pool: no crash
    EXPECT_EQ(panel.rows(), 0);
    EXPECT_EQ(panel.data(), nullptr);
}

TEST(FeaturePanel, MoveTransfersTheLeaseWithoutCopying)
{
    FeatureStore store(32, 8, 2, 5, true);
    GatherEngine engine;
    FeaturePanel a = engine.gather(store, {{3, 7}});
    const float *bytes = a.data();
    FeaturePanel b = std::move(a);
    EXPECT_EQ(b.data(), bytes); // same storage, no copy
    EXPECT_EQ(b.rows(), 2);
}

// ------------------------------------------------- tensor view bridge

TEST(TensorView, ViewReadsAndWritesExternalStorage)
{
    std::vector<float> storage = {1, 2, 3, 4, 5, 6};
    compute::Tensor v = compute::Tensor::view(storage.data(), 2, 3);
    EXPECT_TRUE(v.is_view());
    EXPECT_EQ(v.at(1, 2), 6.0f);
    v.at(0, 0) = 42.0f; // writes land in the external buffer
    EXPECT_EQ(storage[0], 42.0f);
}

TEST(TensorView, CopyingAViewDeepCopies)
{
    // GAT's forward saves its input by copy-assignment; a view copy
    // must therefore materialise, never alias soon-recycled panels.
    std::vector<float> storage = {1, 2, 3, 4};
    compute::Tensor v = compute::Tensor::view(storage.data(), 2, 2);
    compute::Tensor copy = v;
    EXPECT_FALSE(copy.is_view());
    storage[0] = 99.0f;
    EXPECT_EQ(copy.at(0, 0), 1.0f); // owns its bytes
    compute::Tensor assigned;
    assigned = v;
    EXPECT_FALSE(assigned.is_view());
    EXPECT_EQ(assigned.at(0, 0), 99.0f);
}

TEST(TensorView, MovePreservesViewness)
{
    std::vector<float> storage = {1, 2};
    compute::Tensor v = compute::Tensor::view(storage.data(), 1, 2);
    compute::Tensor moved = std::move(v);
    EXPECT_TRUE(moved.is_view());
    EXPECT_EQ(moved.data(), storage.data());
}

} // namespace
} // namespace fastgl
