/**
 * @file
 * Unit + property tests for fastgl::graph — CSR invariants, builder
 * semantics, generator degree/shape properties, feature store.
 */
#include <gtest/gtest.h>

#include <set>

#include "graph/csr_graph.h"
#include "graph/feature_store.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace fastgl {
namespace {

TEST(CsrGraph, EmptyGraph)
{
    graph::CsrGraph g;
    EXPECT_EQ(g.num_nodes(), 0);
    EXPECT_EQ(g.num_edges(), 0);
    EXPECT_TRUE(g.validate().empty());
}

TEST(CsrGraph, ManualConstruction)
{
    // 0 <- {1,2}, 1 <- {0}, 2 <- {}
    graph::CsrGraph g({0, 2, 3, 3}, {1, 2, 0});
    EXPECT_EQ(g.num_nodes(), 3);
    EXPECT_EQ(g.num_edges(), 3);
    EXPECT_EQ(g.degree(0), 2);
    EXPECT_EQ(g.degree(1), 1);
    EXPECT_EQ(g.degree(2), 0);
    EXPECT_EQ(g.neighbors(0)[1], 2);
    EXPECT_TRUE(g.validate().empty());
    EXPECT_DOUBLE_EQ(g.avg_degree(), 1.0);
    EXPECT_EQ(g.max_degree(), 2);
}

TEST(CsrGraph, ValidateCatchesBadIndices)
{
    graph::CsrGraph g({0, 1}, {0});
    EXPECT_TRUE(g.validate().empty());
    graph::CsrGraph bad({0, 1}, {5});
    EXPECT_FALSE(bad.validate().empty());
}

TEST(GraphBuilder, BuildsSortedRows)
{
    graph::GraphBuilder builder(4);
    builder.add_edge(3, 0);
    builder.add_edge(1, 0);
    builder.add_edge(2, 0);
    graph::CsrGraph g = builder.build();
    ASSERT_EQ(g.degree(0), 3);
    EXPECT_EQ(g.neighbors(0)[0], 1);
    EXPECT_EQ(g.neighbors(0)[1], 2);
    EXPECT_EQ(g.neighbors(0)[2], 3);
}

TEST(GraphBuilder, DedupRemovesDuplicatesAndSelfLoops)
{
    graph::GraphBuilder builder(3);
    builder.add_edge(1, 0);
    builder.add_edge(1, 0);
    builder.add_edge(0, 0); // self loop
    builder.add_edge(2, 0);
    graph::CsrGraph g = builder.build(true);
    EXPECT_EQ(g.degree(0), 2);
    EXPECT_TRUE(g.validate().empty());
}

TEST(GraphBuilder, NoDedupKeepsEverything)
{
    graph::GraphBuilder builder(3);
    builder.add_edge(1, 0);
    builder.add_edge(1, 0);
    graph::CsrGraph g = builder.build(false);
    EXPECT_EQ(g.degree(0), 2);
}

TEST(GraphBuilder, UndirectedAddsBothDirections)
{
    graph::GraphBuilder builder(2);
    builder.add_undirected_edge(0, 1);
    graph::CsrGraph g = builder.build();
    EXPECT_EQ(g.degree(0), 1);
    EXPECT_EQ(g.degree(1), 1);
}

/** Generators, parameterized over sizes: CSR invariants must always hold. */
class GeneratorProperty : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorProperty, RmatProducesValidGraph)
{
    graph::RmatParams params;
    params.num_nodes = GetParam();
    params.num_edges = GetParam() * 8;
    params.seed = 99;
    graph::CsrGraph g = graph::generate_rmat(params);
    EXPECT_EQ(g.num_nodes(), params.num_nodes);
    EXPECT_TRUE(g.validate().empty()) << g.validate();
    EXPECT_GT(g.num_edges(), 0);
}

TEST_P(GeneratorProperty, PowerLawProducesValidConnectedish)
{
    graph::PowerLawParams params;
    params.num_nodes = GetParam();
    params.avg_degree = 8.0;
    params.seed = 7;
    graph::CsrGraph g = graph::generate_power_law(params);
    EXPECT_TRUE(g.validate().empty()) << g.validate();
    // The ring backbone guarantees no isolated node.
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u)
        EXPECT_GT(g.degree(u), 0) << "node " << u << " isolated";
}

TEST_P(GeneratorProperty, RingHasMinimumDegree)
{
    graph::CsrGraph g = graph::generate_ring(GetParam(), 2, 3);
    EXPECT_TRUE(g.validate().empty());
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u)
        EXPECT_GE(g.degree(u), 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorProperty,
                         ::testing::Values(64, 257, 1024, 5000));

TEST(Generators, RmatIsDeterministic)
{
    graph::RmatParams params;
    params.num_nodes = 512;
    params.num_edges = 4096;
    params.seed = 5;
    graph::CsrGraph a = graph::generate_rmat(params);
    graph::CsrGraph b = graph::generate_rmat(params);
    EXPECT_EQ(a.indices(), b.indices());
    EXPECT_EQ(a.indptr(), b.indptr());
}

TEST(Generators, RmatIsSkewed)
{
    // R-MAT with a > 0.5 must produce a heavier max degree than a uniform
    // random graph of the same size.
    graph::RmatParams params;
    params.num_nodes = 4096;
    params.num_edges = 32768;
    params.a = 0.65;
    params.b = params.c = (1.0 - 0.65) / 3.0;
    graph::CsrGraph g = graph::generate_rmat(params);
    EXPECT_GT(double(g.max_degree()), 4.0 * g.avg_degree());
}

TEST(Generators, PowerLawHitsTargetAverageDegree)
{
    graph::PowerLawParams params;
    params.num_nodes = 8192;
    params.avg_degree = 12.0;
    graph::CsrGraph g = graph::generate_power_law(params);
    // Dedup and the ring backbone shift the average a little.
    EXPECT_GT(g.avg_degree(), 6.0);
    EXPECT_LT(g.avg_degree(), 20.0);
}

TEST(FeatureStore, MaterializedRoundTrip)
{
    graph::FeatureStore store(100, 16, 5, 42);
    EXPECT_EQ(store.num_nodes(), 100);
    EXPECT_EQ(store.dim(), 16);
    EXPECT_EQ(store.row_bytes(), 64u);
    EXPECT_EQ(store.total_bytes(), 6400u);

    std::vector<float> out(16);
    store.gather_row(7, out.data());
    auto direct = store.row(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_FLOAT_EQ(out[i], direct[i]);
}

TEST(FeatureStore, LabelsInRange)
{
    graph::FeatureStore store(1000, 4, 7, 42);
    for (graph::NodeId u = 0; u < 1000; ++u) {
        EXPECT_GE(store.label(u), 0);
        EXPECT_LT(store.label(u), 7);
    }
}

TEST(FeatureStore, VirtualStoreIsDeterministic)
{
    graph::FeatureStore store(1000, 32, 7, 42, /*materialize=*/false);
    EXPECT_FALSE(store.materialized());
    std::vector<float> a(32), b(32);
    store.gather_row(123, a.data());
    store.gather_row(123, b.data());
    EXPECT_EQ(a, b);
    EXPECT_EQ(store.label(123), store.label(123));

    std::vector<float> c(32);
    store.gather_row(124, c.data());
    EXPECT_NE(a, c);
}

TEST(FeatureStore, FeatureValuesBounded)
{
    // Rows are class centroid (in [-0.5, 0.5]) plus modest noise.
    graph::FeatureStore store(50, 8, 3, 1);
    for (graph::NodeId u = 0; u < 50; ++u) {
        for (float x : store.row(u)) {
            EXPECT_GE(x, -4.0f);
            EXPECT_LE(x, 4.0f);
        }
    }
}

TEST(FeatureStore, FeaturesCarryLabelSignal)
{
    // Same-class rows must be closer (on average) than cross-class rows:
    // the property that makes training curves meaningful.
    graph::FeatureStore store(300, 16, 4, 9);
    auto dist2 = [&](graph::NodeId a, graph::NodeId b) {
        double acc = 0.0;
        auto ra = store.row(a), rb = store.row(b);
        for (int i = 0; i < 16; ++i)
            acc += double(ra[i] - rb[i]) * double(ra[i] - rb[i]);
        return acc;
    };
    double same = 0.0, cross = 0.0;
    int64_t same_n = 0, cross_n = 0;
    for (graph::NodeId a = 0; a < 80; ++a) {
        for (graph::NodeId b = a + 1; b < 80; ++b) {
            if (store.label(a) == store.label(b)) {
                same += dist2(a, b);
                ++same_n;
            } else {
                cross += dist2(a, b);
                ++cross_n;
            }
        }
    }
    ASSERT_GT(same_n, 0);
    ASSERT_GT(cross_n, 0);
    EXPECT_LT(same / double(same_n), cross / double(cross_n));
}

} // namespace
} // namespace fastgl
