/**
 * @file
 * Tests for the hot-path performance layer: ArenaAllocator, Bitmap, the
 * adaptive merge/gallop/bitmap intersection kernels, the parallel
 * match-degree matrix, and bit-identity pins against the pre-overhaul
 * implementations (golden hashes captured from the previous revision).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "graph/generators.h"
#include "match/match_degree.h"
#include "match/reorder.h"
#include "sample/layer_sampler.h"
#include "sample/neighbor_sampler.h"
#include "sample/random_walk_sampler.h"
#include "util/arena.h"
#include "util/bitmap.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fastgl {
namespace {

// ---------------------------------------------------------------- Arena

TEST(ArenaAllocator, AlignmentIsRespected)
{
    util::ArenaAllocator arena(256);
    for (size_t align : {1, 2, 4, 8, 16, 64}) {
        void *p = arena.allocate(3, align);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
            << "align " << align;
    }
    // Mixed-type array allocations stay aligned too.
    arena.alloc_array<char>(1);
    double *d = arena.alloc_array<double>(4);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
}

TEST(ArenaAllocator, ResetReusesTheSameMemory)
{
    util::ArenaAllocator arena(1 << 12);
    void *first = arena.allocate(100);
    arena.reset();
    void *second = arena.allocate(100);
    EXPECT_EQ(first, second);
    EXPECT_EQ(arena.block_count(), 1u);
}

TEST(ArenaAllocator, WatermarkProtectsPersistentPrefix)
{
    util::ArenaAllocator arena(1 << 12);
    int32_t *persistent = arena.alloc_zeroed<int32_t>(64);
    persistent[7] = 1234;
    arena.set_watermark();

    int32_t *scratch1 = arena.alloc_array<int32_t>(64);
    arena.reset();
    int32_t *scratch2 = arena.alloc_array<int32_t>(64);
    EXPECT_EQ(scratch1, scratch2);      // scratch region rewound
    EXPECT_EQ(persistent[7], 1234);     // prefix untouched
    EXPECT_NE(static_cast<void *>(persistent),
              static_cast<void *>(scratch2));
}

TEST(ArenaAllocator, GrowsAcrossBlocksAndCoalescesOnReset)
{
    util::ArenaAllocator arena(128);
    // Spill far past the initial block: several new blocks appear.
    for (int i = 0; i < 8; ++i)
        arena.alloc_array<char>(200);
    EXPECT_GT(arena.block_count(), 2u);

    arena.reset();
    // Fragmented overflow was coalesced; the same total now fits in
    // the (initial + one overflow) blocks without further growth.
    const size_t blocks_after_reset = arena.block_count();
    EXPECT_LE(blocks_after_reset, 2u);
    for (int i = 0; i < 8; ++i)
        arena.alloc_array<char>(200);
    EXPECT_EQ(arena.block_count(), blocks_after_reset);
}

TEST(ArenaAllocator, OversizedRequestIsServedDirectly)
{
    util::ArenaAllocator arena(64);
    char *big = arena.alloc_array<char>(1 << 16);
    std::memset(big, 0xAB, 1 << 16);
    EXPECT_GE(arena.capacity(), size_t(1 << 16));
}

TEST(ArenaAllocator, ZeroedAllocationIsZero)
{
    util::ArenaAllocator arena(1 << 12);
    arena.allocate(37); // misalign the cursor
    int64_t *zeros = arena.alloc_zeroed<int64_t>(100);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zeros[i], 0);
}

// ---------------------------------------------------------------- Bitmap

TEST(Bitmap, SetTestUnsetCount)
{
    util::Bitmap bm(200);
    EXPECT_EQ(bm.count(), 0);
    bm.set(0);
    bm.set(63);
    bm.set(64);
    bm.set(199);
    EXPECT_TRUE(bm.test(0));
    EXPECT_TRUE(bm.test(63));
    EXPECT_TRUE(bm.test(64));
    EXPECT_TRUE(bm.test(199));
    EXPECT_FALSE(bm.test(1));
    EXPECT_EQ(bm.count(), 4);
    bm.unset(63);
    EXPECT_FALSE(bm.test(63));
    EXPECT_EQ(bm.count(), 3);
    bm.clear();
    EXPECT_EQ(bm.count(), 0);
}

TEST(Bitmap, LoadProbeUnloadRoundTrip)
{
    util::Bitmap bm(1000);
    const std::vector<graph::NodeId> ids = {100, 150, 600, 999};
    bm.load<graph::NodeId>(ids, 0);
    EXPECT_EQ(bm.count(), 4);

    const std::vector<graph::NodeId> probe = {99, 100, 150, 151, 999};
    EXPECT_EQ(bm.probe_count_sorted<graph::NodeId>(probe, 0), 3);

    bm.unload<graph::NodeId>(ids, 0);
    EXPECT_EQ(bm.count(), 0);
}

TEST(Bitmap, BaseOffsetAndOutOfRangeIdsAreHandled)
{
    util::Bitmap bm(100);
    // IDs below base and past base+size must be ignored, not crash.
    const std::vector<graph::NodeId> ids = {400, 450, 549, 550, 9999};
    bm.load<graph::NodeId>(ids, graph::NodeId(450));
    EXPECT_EQ(bm.count(), 2); // 450 and 549 are in [450, 550)
    EXPECT_TRUE(bm.test(0));
    EXPECT_TRUE(bm.test(99));
    EXPECT_EQ(bm.probe_count_sorted<graph::NodeId>(ids,
                                                   graph::NodeId(450)),
              2);
}

TEST(Bitmap, IntersectCount)
{
    util::Bitmap a(256), b(512);
    for (size_t i = 0; i < 256; i += 2)
        a.set(i);
    for (size_t i = 0; i < 512; i += 3)
        b.set(i);
    // Multiples of 6 below 256: 0, 6, ..., 252.
    EXPECT_EQ(a.intersect_count(b), 43);
    EXPECT_EQ(b.intersect_count(a), 43);
}

// --------------------------------------------- adaptive intersections

std::vector<graph::NodeId>
random_sorted_set(util::Rng &rng, size_t size, uint64_t universe)
{
    std::vector<graph::NodeId> v;
    v.reserve(size);
    for (size_t i = 0; i < size; ++i)
        v.push_back(static_cast<graph::NodeId>(rng.next_below(universe)));
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
}

int64_t
reference_intersection(const std::vector<graph::NodeId> &a,
                       const std::vector<graph::NodeId> &b)
{
    std::vector<graph::NodeId> out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return static_cast<int64_t>(out.size());
}

TEST(Intersection, MergeGallopAndAdaptiveAgreeUnderFuzz)
{
    util::Rng rng(2024);
    const struct
    {
        size_t size_a, size_b;
        uint64_t universe;
    } cases[] = {
        {0, 100, 1000},      {1, 1, 10},         {50, 50, 200},
        {100, 100, 5000},    {10, 1000, 4000},   {3, 5000, 20000},
        {2000, 2000, 3000},  {500, 40, 10000},   {1, 10000, 10000},
        {257, 33000, 40000},
    };
    for (const auto &c : cases) {
        for (int rep = 0; rep < 8; ++rep) {
            const auto a = random_sorted_set(rng, c.size_a, c.universe);
            const auto b = random_sorted_set(rng, c.size_b, c.universe);
            const int64_t want = reference_intersection(a, b);
            EXPECT_EQ(match::detail::intersect_merge(a, b), want);
            const auto &small = a.size() <= b.size() ? a : b;
            const auto &large = a.size() <= b.size() ? b : a;
            EXPECT_EQ(match::detail::intersect_gallop(small, large),
                      want);
            EXPECT_EQ(match::intersect_sorted(a, b), want);
            EXPECT_EQ(match::intersect_sorted(b, a), want);
        }
    }
}

TEST(Intersection, DisjointRangesShortCircuit)
{
    const std::vector<graph::NodeId> lo = {1, 2, 3};
    const std::vector<graph::NodeId> hi = {10, 11};
    EXPECT_EQ(match::intersect_sorted(lo, hi), 0);
    EXPECT_EQ(match::intersect_sorted(hi, lo), 0);
}

TEST(Intersection, NodeSetUsesAdaptiveKernel)
{
    util::Rng rng(7);
    for (int rep = 0; rep < 16; ++rep) {
        const auto a = random_sorted_set(rng, 30, 3000);
        const auto b = random_sorted_set(rng, 2500, 3000);
        match::NodeSet sa(a), sb(b);
        EXPECT_EQ(sa.intersection_size(sb),
                  reference_intersection(a, b));
        EXPECT_EQ(sa.intersection_size(sb), sb.intersection_size(sa));
    }
}

// ------------------------------------------- parallel degree matrix

std::vector<match::NodeSet>
random_node_sets(uint64_t seed, size_t count)
{
    // Mix of dense (bitmap-path), mid (merge) and tiny (gallop) sets.
    util::Rng rng(seed);
    std::vector<match::NodeSet> sets;
    for (size_t i = 0; i < count; ++i) {
        size_t size;
        switch (i % 3) {
          case 0: size = 400 + rng.next_below(300); break;
          case 1: size = 60 + rng.next_below(60); break;
          default: size = 2 + rng.next_below(8); break;
        }
        std::vector<graph::NodeId> v;
        for (size_t k = 0; k < size; ++k)
            v.push_back(
                static_cast<graph::NodeId>(rng.next_below(4096)));
        sets.emplace_back(v);
    }
    return sets;
}

TEST(MatchDegreeMatrix, ParallelIsBitIdenticalAcrossThreadCounts)
{
    const auto sets = random_node_sets(55, 40);
    const auto seq = match::match_degree_matrix(sets);
    for (size_t threads : {1, 2, 8}) {
        util::ThreadPool pool(threads);
        const auto par = match::match_degree_matrix(sets, pool);
        ASSERT_EQ(par.size(), seq.size());
        for (size_t i = 0; i < seq.size(); ++i) {
            for (size_t j = 0; j < seq.size(); ++j) {
                // Exact: all policies count the same integers and the
                // division is performed identically per cell.
                EXPECT_EQ(par[i][j], seq[i][j])
                    << "threads=" << threads << " cell " << i << ","
                    << j;
            }
        }
    }
}

TEST(MatchDegreeMatrix, MatrixMatchesPairwiseDefinition)
{
    const auto sets = random_node_sets(99, 12);
    const auto m = match::match_degree_matrix(sets);
    for (size_t i = 0; i < sets.size(); ++i) {
        EXPECT_EQ(m[i][i], 1.0);
        for (size_t j = 0; j < sets.size(); ++j) {
            if (i != j) {
                EXPECT_EQ(m[i][j],
                          match::match_degree(sets[i], sets[j]));
            }
        }
    }
}

TEST(MatchDegreeStats, DerivedFromMatrixEqualsPairwiseRecomputation)
{
    const auto sets = random_node_sets(123, 20);
    // The old implementation re-ran every pairwise intersection; pin
    // the new matrix-derived stats to that exact accumulation.
    double sum = 0.0, lo = 1.0, hi = 0.0;
    int64_t pairs = 0;
    for (size_t i = 0; i < sets.size(); ++i) {
        for (size_t j = i + 1; j < sets.size(); ++j) {
            const double d = match::match_degree(sets[i], sets[j]);
            sum += d;
            lo = std::min(lo, d);
            hi = std::max(hi, d);
            ++pairs;
        }
    }
    const auto stats = match::match_degree_stats(sets);
    EXPECT_EQ(stats.average, sum / double(pairs));
    EXPECT_EQ(stats.min, lo);
    EXPECT_EQ(stats.max, hi);

    const auto from_matrix =
        match::match_degree_stats(match::match_degree_matrix(sets));
    EXPECT_EQ(from_matrix.average, stats.average);
    EXPECT_EQ(from_matrix.min, stats.min);
    EXPECT_EQ(from_matrix.max, stats.max);
}

TEST(PairwiseOverlap, CountsMatchNodeSetIntersections)
{
    const auto sets = random_node_sets(321, 15);
    const size_t n = sets.size();
    util::ThreadPool pool(4);
    const auto seq = match::pairwise_overlap_counts(sets, nullptr);
    const auto par = match::pairwise_overlap_counts(sets, &pool);
    EXPECT_EQ(seq, par);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(seq[i * n + i], sets[i].size());
        for (size_t j = 0; j < n; ++j) {
            if (i != j) {
                EXPECT_EQ(seq[i * n + j],
                          sets[i].intersection_size(sets[j]));
            }
        }
    }
}

TEST(Reorder, MaxOverlapIsPoolInvariant)
{
    const auto sets = random_node_sets(777, 24);
    util::ThreadPool pool(8);
    const auto seq =
        match::greedy_reorder_max_overlap(&sets[0], sets, nullptr);
    const auto par =
        match::greedy_reorder_max_overlap(&sets[0], sets, &pool);
    EXPECT_EQ(seq.order, par.order);
    EXPECT_EQ(seq.chained_match, par.chained_match);
    EXPECT_EQ(seq.baseline_match, par.baseline_match);
}

// ------------------------------------------------ golden bit-identity
//
// Hashes captured from the pre-overhaul implementation (sequential
// merge-join intersections, per-call heap scratch, unordered_map visit
// counts). The overhauled hot paths must reproduce them bit for bit.

uint64_t
fnv(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001B3ULL;
    }
    return h;
}

constexpr uint64_t kFnvSeed = 0xCBF29CE484222325ULL;

uint64_t
hash_subgraph(const sample::SampledSubgraph &sg)
{
    uint64_t h = kFnvSeed;
    h = fnv(h, static_cast<uint64_t>(sg.num_seeds));
    h = fnv(h, static_cast<uint64_t>(sg.instances));
    h = fnv(h, static_cast<uint64_t>(sg.edges_examined));
    for (graph::NodeId n : sg.nodes)
        h = fnv(h, static_cast<uint64_t>(n));
    for (const auto &blk : sg.blocks) {
        for (auto t : blk.targets)
            h = fnv(h, static_cast<uint64_t>(t));
        for (auto p : blk.indptr)
            h = fnv(h, static_cast<uint64_t>(p));
        for (auto s : blk.sources)
            h = fnv(h, static_cast<uint64_t>(s));
    }
    return h;
}

uint64_t
hash_double(uint64_t h, double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return fnv(h, bits);
}

class GoldenBehavior : public ::testing::Test
{
  protected:
    GoldenBehavior()
    {
        graph::RmatParams rp;
        rp.num_nodes = 1 << 12;
        rp.num_edges = 1 << 16;
        rp.seed = 7;
        graph = graph::generate_rmat(rp);
        util::Rng seed_rng(99);
        for (int i = 0; i < 256; ++i)
            seeds.push_back(static_cast<graph::NodeId>(
                seed_rng.next_below(
                    static_cast<uint64_t>(graph.num_nodes()))));
    }

    graph::CsrGraph graph;
    std::vector<graph::NodeId> seeds;
};

TEST_F(GoldenBehavior, NeighborSamplerUnchanged)
{
    sample::NeighborSamplerOptions o;
    o.fanouts = {5, 10, 15};
    sample::NeighborSampler s(graph, o);
    uint64_t h = kFnvSeed;
    for (uint64_t k = 0; k < 4; ++k)
        h = fnv(h, hash_subgraph(s.sample(seeds, 1000 + k)));
    EXPECT_EQ(h, 0xDDACC40CDE0F4ECCULL);
}

TEST_F(GoldenBehavior, NeighborSamplerWithReplacementUnchanged)
{
    sample::NeighborSamplerOptions o;
    o.fanouts = {3, 50};
    o.replace = true;
    sample::NeighborSampler s(graph, o);
    EXPECT_EQ(hash_subgraph(s.sample(seeds, 5)),
              0x288DE3D938E51BDEULL);
}

TEST_F(GoldenBehavior, RandomWalkSamplerUnchanged)
{
    sample::RandomWalkOptions o;
    sample::RandomWalkSampler s(graph, o);
    uint64_t h = kFnvSeed;
    for (uint64_t k = 0; k < 4; ++k)
        h = fnv(h, hash_subgraph(s.sample(seeds, 2000 + k)));
    EXPECT_EQ(h, 0x0DA1FDDEB07C3450ULL);
}

TEST_F(GoldenBehavior, LayerSamplerUnchanged)
{
    sample::LayerSamplerOptions o;
    o.layer_sizes = {512, 256};
    o.seed = 31;
    sample::LayerSampler s(graph, o);
    uint64_t h = kFnvSeed;
    for (int k = 0; k < 3; ++k)
        h = fnv(h, hash_subgraph(s.sample(seeds)));
    EXPECT_EQ(h, 0x7AB1C1D67AA48D1CULL);
}

TEST(GoldenMatch, MatrixStatsAndReorderUnchanged)
{
    util::Rng rng(123);
    std::vector<match::NodeSet> sets;
    for (int i = 0; i < 24; ++i) {
        std::vector<graph::NodeId> v;
        const uint64_t sz = 50 + rng.next_below(2000);
        for (uint64_t k = 0; k < sz; ++k)
            v.push_back(
                static_cast<graph::NodeId>(rng.next_below(8192)));
        sets.emplace_back(v);
    }
    const auto m = match::match_degree_matrix(sets);
    uint64_t h = kFnvSeed;
    for (const auto &row : m)
        for (double d : row)
            h = hash_double(h, d);
    EXPECT_EQ(h, 0xB74D0FBC2B736611ULL);

    const auto st = match::match_degree_stats(sets);
    uint64_t hs = kFnvSeed;
    hs = hash_double(hs, st.average);
    hs = hash_double(hs, st.min);
    hs = hash_double(hs, st.max);
    EXPECT_EQ(hs, 0xBFDF46218582D6BCULL);

    const auto rr = match::greedy_reorder(sets);
    const auto ra = match::greedy_reorder_max_overlap(&sets[0], sets);
    const auto rn = match::greedy_reorder_max_overlap(nullptr, sets);
    uint64_t hr = kFnvSeed;
    for (auto i : rr.order)
        hr = fnv(hr, static_cast<uint64_t>(i));
    for (auto i : ra.order)
        hr = fnv(hr, static_cast<uint64_t>(i));
    for (auto i : rn.order)
        hr = fnv(hr, static_cast<uint64_t>(i));
    EXPECT_EQ(hr, 0x1E2D75FA782F3B85ULL);
}

// ------------------------------------------- large-fanout regression
//
// The previous sampler rejected fanouts >= 64 (fixed stack buffer);
// large fanouts now spill to arena scratch.

class LargeFanout : public ::testing::TestWithParam<int>
{
};

TEST_P(LargeFanout, SampleSucceedsAndIsWellFormed)
{
    const int fanout = GetParam();
    graph::RmatParams rp;
    rp.num_nodes = 2000;
    rp.num_edges = 60000; // average degree 30, heavy-tailed tail > 128
    rp.seed = 17;
    const graph::CsrGraph g = graph::generate_rmat(rp);

    sample::NeighborSamplerOptions o;
    o.fanouts = {fanout};
    sample::NeighborSampler s(g, o);

    // Distinct seeds (duplicates would share a local ID and shrink the
    // target list); stride coprime to num_nodes covers low-ID hubs too.
    std::vector<graph::NodeId> seeds;
    for (int i = 0; i < 128; ++i)
        seeds.push_back(
            static_cast<graph::NodeId>((i * 31) % g.num_nodes()));

    const auto sg = s.sample(seeds, 42);
    ASSERT_EQ(sg.blocks.size(), 1u);
    const auto &blk = sg.blocks[0];
    ASSERT_EQ(blk.num_targets(), int64_t(seeds.size()));

    bool saw_full_fanout = false;
    for (int64_t t = 0; t < blk.num_targets(); ++t) {
        const graph::NodeId gu = sg.nodes[static_cast<size_t>(t)];
        const int64_t deg = g.degree(gu);
        const int64_t sampled = blk.indptr[t + 1] - blk.indptr[t];
        // min(degree, fanout) sampled neighbours plus the self edge.
        EXPECT_EQ(sampled,
                  std::min<int64_t>(deg, fanout) + 1)
            << "target " << t;
        if (deg >= fanout)
            saw_full_fanout = true;

        // Without replacement: sampled sources are distinct.
        std::vector<graph::NodeId> srcs(
            blk.sources.begin() + blk.indptr[t],
            blk.sources.begin() + blk.indptr[t + 1]);
        std::sort(srcs.begin(), srcs.end());
        EXPECT_TRUE(std::adjacent_find(srcs.begin(), srcs.end()) ==
                    srcs.end())
            << "duplicate sampled neighbour for target " << t;
    }
    // The graph must actually exercise the large-fanout path.
    EXPECT_TRUE(saw_full_fanout)
        << "no node with degree >= " << fanout << "; test is vacuous";

    // Determinism: same seeds + batch seed → identical subgraph.
    const auto sg2 = s.sample(seeds, 42);
    EXPECT_EQ(sg.nodes, sg2.nodes);
    ASSERT_EQ(sg2.blocks.size(), 1u);
    EXPECT_EQ(blk.indptr, sg2.blocks[0].indptr);
    EXPECT_EQ(blk.sources, sg2.blocks[0].sources);
}

INSTANTIATE_TEST_SUITE_P(Fanouts, LargeFanout,
                         ::testing::Values(64, 128));

} // namespace
} // namespace fastgl
