/**
 * @file
 * Cross-module integration tests: the full stack run end-to-end on a
 * replica, asserting the paper's headline orderings hold on the composed
 * system (not just in isolated unit models).
 */
#include <gtest/gtest.h>

#include <map>

#include "core/pipeline.h"
#include "core/trainer.h"
#include "graph/datasets.h"
#include "match/match_degree.h"
#include "sample/neighbor_sampler.h"

namespace fastgl {
namespace {

const graph::Dataset &
replica(graph::DatasetId id)
{
    static std::map<graph::DatasetId, graph::Dataset> cache;
    auto it = cache.find(id);
    if (it == cache.end()) {
        graph::ReplicaOptions opts;
        opts.size_factor = 0.12;
        opts.materialize_features = false;
        it = cache.emplace(id, graph::load_replica(id, opts)).first;
    }
    return it->second;
}

double
epoch_time(graph::DatasetId id, core::Framework fw, int gpus = 2,
           int64_t batches = 6)
{
    core::PipelineOptions opts;
    opts.fw = core::framework_preset(fw);
    opts.num_gpus = gpus;
    opts.max_batches = batches;
    opts.seed = 7;
    core::Pipeline pipe(replica(id), opts);
    return pipe.run_epoch().epoch_seconds;
}

TEST(Integration, HeadlineSpeedupOrderingOnProducts)
{
    // Paper Fig. 9: FastGL < GNNLab < DGL < PyG epoch time.
    const auto id = graph::DatasetId::kProducts;
    const double pyg = epoch_time(id, core::Framework::kPyG);
    const double dgl = epoch_time(id, core::Framework::kDgl);
    const double lab = epoch_time(id, core::Framework::kGnnLab);
    const double fast = epoch_time(id, core::Framework::kFastGL);
    EXPECT_LT(fast, lab);
    EXPECT_LT(lab, dgl);
    EXPECT_LT(dgl, pyg);
    // PyG is "more than an order of magnitude slower" than FastGL.
    EXPECT_GT(pyg / fast, 5.0);
}

TEST(Integration, FastGlWinsOnEveryDataset)
{
    for (graph::DatasetId id : graph::all_datasets()) {
        const double dgl = epoch_time(id, core::Framework::kDgl, 2, 4);
        const double fast =
            epoch_time(id, core::Framework::kFastGL, 2, 4);
        EXPECT_LT(fast, dgl) << graph::dataset_name(id);
    }
}

TEST(Integration, GnnAdvisorLosesToDglInSampledTraining)
{
    // Paper Section 6.3: per-iteration preprocessing makes GNNAdvisor a
    // net loss for sampling-based training.
    const auto id = graph::DatasetId::kProducts;
    const double dgl = epoch_time(id, core::Framework::kDgl);
    const double advisor = epoch_time(id, core::Framework::kGnnAdvisor);
    EXPECT_GT(advisor, dgl);
}

TEST(Integration, MatchDegreeOrderingAcrossDatasets)
{
    // Paper Table 4: Reddit has by far the highest match degree; MAG and
    // Papers100M the lowest.
    auto avg_match = [](graph::DatasetId id) {
        const graph::Dataset &ds = replica(id);
        sample::NeighborSamplerOptions sopts;
        sopts.seed = 13;
        sample::NeighborSampler sampler(ds.graph, sopts);
        sample::BatchSplitter splitter(ds.train_nodes, ds.batch_size,
                                       5);
        splitter.shuffle_epoch();
        std::vector<match::NodeSet> sets;
        const int64_t n = std::min<int64_t>(5, splitter.num_batches());
        for (int64_t b = 0; b < n; ++b)
            sets.emplace_back(sampler.sample(splitter.batch(b)).nodes);
        return match::match_degree_stats(sets).average;
    };
    const double reddit = avg_match(graph::DatasetId::kReddit);
    const double mag = avg_match(graph::DatasetId::kMag);
    EXPECT_GT(reddit, 0.5);
    EXPECT_GT(reddit, mag);
}

TEST(Integration, ReorderWindowImprovesReuse)
{
    // Fig. 10b: Match+Reorder reuses at least as much as Match alone.
    // The greedy window reorder is a heuristic, so assert the aggregate
    // over several seeds rather than any single epoch stream.
    auto run = [](core::IoStrategy io, uint64_t seed) {
        core::PipelineOptions opts;
        opts.fw = core::framework_preset(core::Framework::kFastGL);
        opts.fw.io = io;
        opts.fw.cache_on_top_of_match = false;
        opts.num_gpus = 1;
        opts.max_batches = 12;
        opts.reorder_window = 6;
        opts.seed = seed;
        core::Pipeline pipe(replica(graph::DatasetId::kProducts), opts);
        return pipe.run_epoch();
    };
    int64_t match_only = 0;
    int64_t reordered = 0;
    for (uint64_t seed : {21, 22, 23}) {
        match_only += run(core::IoStrategy::kMatch, seed).nodes_loaded;
        reordered +=
            run(core::IoStrategy::kMatchReorder, seed).nodes_loaded;
    }
    EXPECT_LE(reordered, match_only);
}

TEST(Integration, AblationStackEachStepHelps)
{
    // Paper Fig. 15: DGL -> +MR -> +MR+MA -> FastGL monotone speedup.
    const auto &ds = replica(graph::DatasetId::kProducts);
    auto run = [&](core::FrameworkConfig fw) {
        core::PipelineOptions opts;
        opts.fw = std::move(fw);
        opts.num_gpus = 2;
        opts.max_batches = 6;
        opts.seed = 3;
        return core::Pipeline(ds, opts).run_epoch().epoch_seconds;
    };

    auto dgl = core::framework_preset(core::Framework::kDgl);
    auto mr = dgl;
    mr.io = core::IoStrategy::kMatchReorder;
    auto mr_ma = mr;
    mr_ma.compute_plan = compute::ComputePlan::kMemoryAware;
    auto full = core::framework_preset(core::Framework::kFastGL);
    full.cache_on_top_of_match = false;

    const double t0 = run(dgl);
    const double t1 = run(mr);
    const double t2 = run(mr_ma);
    const double t3 = run(full);
    EXPECT_LT(t1, t0);
    EXPECT_LT(t2, t1);
    EXPECT_LT(t3, t2);
}

TEST(Integration, BatchSizeScalingFavoursFastGl)
{
    // Fig. 14b: larger batches -> more overlap -> bigger FastGL gain.
    auto speedup = [&](int64_t batch) {
        core::PipelineOptions opts;
        opts.fw = core::framework_preset(core::Framework::kDgl);
        opts.batch_size = batch;
        opts.max_batches = 6;
        opts.num_gpus = 2;
        opts.seed = 9;
        core::Pipeline dgl(replica(graph::DatasetId::kProducts), opts);
        opts.fw = core::framework_preset(core::Framework::kFastGL);
        core::Pipeline fast(replica(graph::DatasetId::kProducts), opts);
        return dgl.run_epoch().epoch_seconds /
               fast.run_epoch().epoch_seconds;
    };
    EXPECT_GT(speedup(240), 1.0);
}

TEST(Integration, TrainerAndPipelineShareSamplingStatistics)
{
    // The timing pipeline and the numeric trainer sample from the same
    // distribution: unique-node counts must be in the same ballpark.
    const auto &ds = replica(graph::DatasetId::kReddit);
    core::PipelineOptions popts;
    popts.fw = core::framework_preset(core::Framework::kDgl);
    popts.max_batches = 3;
    popts.num_gpus = 1;
    popts.seed = 31;
    core::Pipeline pipe(ds, popts);
    const auto result = pipe.run_epoch();
    const double avg_unique =
        double(result.unique_nodes) / double(result.batches);
    EXPECT_GT(avg_unique, 0.0);
    EXPECT_LT(avg_unique, double(ds.graph.num_nodes()));
}

} // namespace
} // namespace fastgl
