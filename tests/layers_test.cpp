/**
 * @file
 * Finite-difference gradient checks for the GCN, GIN and GAT layers: the
 * strongest possible correctness evidence for hand-written backward
 * passes. Each layer's parameter gradients and input gradients are checked
 * against central differences on a small sampled block.
 */
#include <gtest/gtest.h>

#include <cmath>

#include <functional>
#include <memory>

#include "compute/gat_layer.h"
#include "compute/gcn_layer.h"
#include "compute/gin_layer.h"
#include "util/rng.h"

namespace fastgl {
namespace {

using compute::GnnLayer;
using compute::Tensor;

/** Block with 3 targets over 5 source rows (targets are rows 0..2). */
sample::LayerBlock
gradcheck_block()
{
    sample::LayerBlock blk;
    blk.targets = {0, 1, 2};
    blk.indptr = {0, 3, 5, 8};
    blk.sources = {0, 3, 4, 1, 2, 2, 3, 4};
    return blk;
}

/** Scalar loss: <forward(input), projection>. */
double
projected_loss(GnnLayer &layer, const sample::LayerBlock &blk,
               const Tensor &input, const Tensor &projection)
{
    Tensor out = layer.forward(blk, input);
    double acc = 0.0;
    for (int64_t i = 0; i < out.rows(); ++i)
        for (int64_t j = 0; j < out.cols(); ++j)
            acc += double(out.at(i, j)) * double(projection.at(i, j));
    return acc;
}

/**
 * Check d(loss)/d(*target_value) for a handful of elements of a tensor
 * against central differences.
 */
void
check_gradient(GnnLayer &layer, const sample::LayerBlock &blk,
               Tensor &input, const Tensor &projection,
               Tensor &perturbed, const Tensor &analytic_grad,
               const char *what)
{
    constexpr float kEps = 1e-2f;
    // Probe a deterministic subset of elements.
    const int64_t stride =
        std::max<int64_t>(1, perturbed.numel() / 7);
    for (int64_t flat = 0; flat < perturbed.numel(); flat += stride) {
        const int64_t r = flat / perturbed.cols();
        const int64_t c = flat % perturbed.cols();
        const float saved = perturbed.at(r, c);

        perturbed.at(r, c) = saved + kEps;
        const double up = projected_loss(layer, blk, input, projection);
        perturbed.at(r, c) = saved - kEps;
        const double down =
            projected_loss(layer, blk, input, projection);
        perturbed.at(r, c) = saved;

        const double numeric = (up - down) / (2.0 * kEps);
        const double analytic = analytic_grad.at(r, c);
        const double scale =
            std::max({1.0, std::abs(numeric), std::abs(analytic)});
        EXPECT_NEAR(analytic, numeric, 0.05 * scale)
            << what << " element (" << r << "," << c << ")";
    }
}

enum class LayerKind { kGcn, kGin, kGat };

class LayerGradCheck : public ::testing::TestWithParam<LayerKind>
{
  protected:
    std::unique_ptr<GnnLayer>
    make_layer(util::Rng &rng)
    {
        switch (GetParam()) {
          case LayerKind::kGcn:
            return std::make_unique<compute::GcnLayer>(4, 3, true, rng);
          case LayerKind::kGin:
            return std::make_unique<compute::GinLayer>(4, 3, true, rng);
          case LayerKind::kGat:
            return std::make_unique<compute::GatLayer>(4, 2, 3, true,
                                                       rng);
        }
        return nullptr;
    }
};

TEST_P(LayerGradCheck, ParameterGradientsMatchFiniteDifferences)
{
    util::Rng rng(404);
    auto layer = make_layer(rng);
    const auto blk = gradcheck_block();
    Tensor input = Tensor::randn(5, 4, rng, 0.8f);
    Tensor projection =
        Tensor::randn(blk.num_targets(), layer->out_dim(), rng, 1.0f);

    // Analytic gradients.
    for (auto *p : layer->parameters())
        p->zero_grad();
    layer->forward(blk, input);
    layer->backward(blk, projection);

    for (auto *p : layer->parameters()) {
        Tensor analytic = p->grad; // copy before re-forwards disturb it
        check_gradient(*layer, blk, input, projection, p->value,
                       analytic, "parameter");
    }
}

TEST_P(LayerGradCheck, InputGradientsMatchFiniteDifferences)
{
    util::Rng rng(505);
    auto layer = make_layer(rng);
    const auto blk = gradcheck_block();
    Tensor input = Tensor::randn(5, 4, rng, 0.8f);
    Tensor projection =
        Tensor::randn(blk.num_targets(), layer->out_dim(), rng, 1.0f);

    for (auto *p : layer->parameters())
        p->zero_grad();
    layer->forward(blk, input);
    Tensor grad_input = layer->backward(blk, projection);
    ASSERT_EQ(grad_input.rows(), input.rows());
    ASSERT_EQ(grad_input.cols(), input.cols());

    check_gradient(*layer, blk, input, projection, input, grad_input,
                   "input");
}

INSTANTIATE_TEST_SUITE_P(AllLayers, LayerGradCheck,
                         ::testing::Values(LayerKind::kGcn,
                                           LayerKind::kGin,
                                           LayerKind::kGat),
                         [](const auto &info) {
                             switch (info.param) {
                               case LayerKind::kGcn: return "GCN";
                               case LayerKind::kGin: return "GIN";
                               case LayerKind::kGat: return "GAT";
                             }
                             return "?";
                         });

TEST(Layers, OutputShapes)
{
    util::Rng rng(1);
    const auto blk = gradcheck_block();
    Tensor input = Tensor::randn(5, 4, rng, 1.0f);

    compute::GcnLayer gcn(4, 7, false, rng);
    EXPECT_EQ(gcn.forward(blk, input).rows(), 3);
    EXPECT_EQ(gcn.forward(blk, input).cols(), 7);
    EXPECT_EQ(gcn.out_dim(), 7);

    compute::GinLayer gin(4, 6, false, rng);
    EXPECT_EQ(gin.forward(blk, input).cols(), 6);

    compute::GatLayer gat(4, 8, 8, true, rng);
    EXPECT_EQ(gat.forward(blk, input).cols(), 64);
    EXPECT_EQ(gat.num_heads(), 8);
}

TEST(Layers, GatAttentionRowsSumToOne)
{
    // The attention coefficients of each (target, head) form a softmax;
    // verify through a probe: constant projected features make the output
    // equal the feature itself iff the alphas sum to one.
    util::Rng rng(2);
    const auto blk = gradcheck_block();
    compute::GatLayer gat(4, 2, 3, /*apply_elu=*/false, rng);
    Tensor input(5, 4);
    input.fill(1.0f); // all rows identical => z rows identical
    Tensor out = gat.forward(blk, input);
    // Every target's output must equal any source's projection (convex
    // combination of identical vectors).
    Tensor out2 = gat.forward(blk, input);
    for (int64_t t = 1; t < out.rows(); ++t)
        for (int64_t j = 0; j < out.cols(); ++j)
            EXPECT_NEAR(out.at(t, j), out.at(0, j), 1e-4);
    (void)out2;
}

} // namespace
} // namespace fastgl
