/**
 * @file
 * Tests for Match-Reorder: node sets, match degrees, the Match transfer
 * planner, greedy Reorder (Algorithm 1), and the feature caches.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>
#include <string>

#include "graph/generators.h"
#include "match/feature_cache.h"
#include "match/match.h"
#include "match/match_degree.h"
#include "match/reorder.h"
#include "util/rng.h"

namespace fastgl {
namespace {

TEST(NodeSet, SortsAndDedups)
{
    match::NodeSet set({5, 3, 5, 1, 3});
    EXPECT_EQ(set.size(), 3);
    EXPECT_EQ(set.sorted(), (std::vector<graph::NodeId>{1, 3, 5}));
    EXPECT_TRUE(set.contains(3));
    EXPECT_FALSE(set.contains(4));
}

TEST(NodeSet, IntersectionAndDifference)
{
    match::NodeSet a({1, 2, 3, 4});
    match::NodeSet b({3, 4, 5});
    EXPECT_EQ(a.intersection_size(b), 2);
    std::vector<graph::NodeId> diff;
    a.difference(b, diff);
    EXPECT_EQ(diff, (std::vector<graph::NodeId>{1, 2}));
}

TEST(MatchDegree, PaperDefinition)
{
    // M_ij = N_o / min(N_i, N_j).
    match::NodeSet a({1, 2, 3, 4});
    match::NodeSet b({3, 4});
    EXPECT_DOUBLE_EQ(match::match_degree(a, b), 1.0); // b ⊂ a
    match::NodeSet c({4, 5});
    EXPECT_DOUBLE_EQ(match::match_degree(b, c), 0.5);
    match::NodeSet empty(std::vector<graph::NodeId>{});
    EXPECT_DOUBLE_EQ(match::match_degree(a, empty), 0.0);
}

TEST(MatchDegree, MatrixIsSymmetricWithUnitDiagonal)
{
    std::vector<match::NodeSet> sets = {
        match::NodeSet({1, 2, 3}), match::NodeSet({2, 3, 4}),
        match::NodeSet({7, 8})};
    const auto m = match::match_degree_matrix(sets);
    for (size_t i = 0; i < sets.size(); ++i) {
        EXPECT_DOUBLE_EQ(m[i][i], 1.0);
        for (size_t j = 0; j < sets.size(); ++j)
            EXPECT_DOUBLE_EQ(m[i][j], m[j][i]);
    }
    EXPECT_DOUBLE_EQ(m[0][2], 0.0);
}

TEST(MatchDegree, StatsDeltaIsMaxMinusMin)
{
    std::vector<match::NodeSet> sets = {
        match::NodeSet({1, 2, 3, 4}), match::NodeSet({1, 2, 3, 5}),
        match::NodeSet({1, 9, 10, 11})};
    const auto stats = match::match_degree_stats(sets);
    EXPECT_DOUBLE_EQ(stats.max, 0.75);
    EXPECT_DOUBLE_EQ(stats.min, 0.25);
    EXPECT_DOUBLE_EQ(stats.delta(), 0.5);
    EXPECT_GT(stats.average, 0.0);
}

TEST(Matcher, FirstBatchLoadsEverything)
{
    match::Matcher matcher;
    const auto plan = matcher.plan(match::NodeSet({1, 2, 3}));
    EXPECT_EQ(plan.load_count(), 3);
    EXPECT_EQ(plan.overlap_nodes, 0);
}

TEST(Matcher, SecondBatchLoadsOnlyDifference)
{
    // Paper Fig. 6(a): after SubG1 {0,3,4,...}, SubG2 reuses the overlap
    // and loads only the new nodes.
    match::Matcher matcher;
    matcher.plan(match::NodeSet({0, 2, 3, 4, 7}));
    const auto plan = matcher.plan(match::NodeSet({0, 3, 4, 10, 12}));
    EXPECT_EQ(plan.overlap_nodes, 3); // 0, 3, 4
    EXPECT_EQ(plan.load_nodes, (std::vector<graph::NodeId>{10, 12}));
    EXPECT_DOUBLE_EQ(matcher.reuse_fraction(), 3.0 / 10.0);
}

TEST(Matcher, LoadBytesScalesWithRowBytes)
{
    match::Matcher matcher;
    const auto plan = matcher.plan(match::NodeSet({1, 2, 3, 4}));
    EXPECT_EQ(plan.load_bytes(100), 400u);
}

TEST(Matcher, ResetForgetsResidentBatch)
{
    match::Matcher matcher;
    matcher.plan(match::NodeSet({1, 2, 3}));
    matcher.reset();
    const auto plan = matcher.plan(match::NodeSet({1, 2, 3}));
    EXPECT_EQ(plan.load_count(), 3);
}

TEST(Reorder, OrderIsAPermutationStartingAtZero)
{
    std::vector<match::NodeSet> sets;
    util::Rng rng(5);
    for (int i = 0; i < 10; ++i) {
        std::vector<graph::NodeId> nodes;
        for (int k = 0; k < 50; ++k)
            nodes.push_back(graph::NodeId(rng.next_below(200)));
        sets.emplace_back(nodes);
    }
    const auto result = match::greedy_reorder(sets);
    ASSERT_EQ(result.order.size(), sets.size());
    EXPECT_EQ(result.order[0], 0); // Algorithm 1 line 4
    std::vector<int64_t> sorted = result.order;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size(); ++i)
        EXPECT_EQ(sorted[i], int64_t(i));
}

TEST(Reorder, ChainedMatchIsConsistentWithReportedOrder)
{
    // chained_match must equal the sum of consecutive match degrees of
    // the emitted order, and the first hop must be the argmax from the
    // anchor (Algorithm 1 line 7).
    util::Rng rng(17);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<match::NodeSet> sets;
        for (int i = 0; i < 8; ++i) {
            std::vector<graph::NodeId> nodes;
            for (int k = 0; k < 40; ++k)
                nodes.push_back(graph::NodeId(rng.next_below(120)));
            sets.emplace_back(nodes);
        }
        const auto m = match::match_degree_matrix(sets);
        const auto result = match::greedy_reorder(m);
        double chained = 0.0;
        for (size_t i = 1; i < result.order.size(); ++i) {
            chained += m[size_t(result.order[i - 1])]
                        [size_t(result.order[i])];
        }
        EXPECT_NEAR(chained, result.chained_match, 1e-12);
        double best_first = -1.0;
        for (size_t k = 1; k < sets.size(); ++k)
            best_first = std::max(best_first, m[0][k]);
        EXPECT_DOUBLE_EQ(m[0][size_t(result.order[1])], best_first);
    }
}

TEST(Reorder, GreedyBeatsDefaultOrderOnAverage)
{
    // Greedy reorder is a heuristic — not guaranteed to beat the default
    // order on every instance — but on sampled-subgraph-like inputs it
    // must win in aggregate (the paper's Fig. 10b premise).
    util::Rng rng(23);
    double greedy_sum = 0.0, baseline_sum = 0.0;
    int wins = 0, trials = 25;
    for (int trial = 0; trial < trials; ++trial) {
        std::vector<match::NodeSet> sets;
        for (int i = 0; i < 8; ++i) {
            std::vector<graph::NodeId> nodes;
            for (int k = 0; k < 40; ++k)
                nodes.push_back(graph::NodeId(rng.next_below(120)));
            sets.emplace_back(nodes);
        }
        const auto result = match::greedy_reorder(sets);
        greedy_sum += result.chained_match;
        baseline_sum += result.baseline_match;
        if (result.chained_match + 1e-12 >= result.baseline_match)
            ++wins;
    }
    EXPECT_GT(greedy_sum, baseline_sum);
    EXPECT_GE(wins, trials * 3 / 4);
}

TEST(Reorder, PicksObviousBestChain)
{
    // Paper Fig. 6(b): with m13 > m12 the order swaps SubG2 and SubG3.
    std::vector<std::vector<double>> m = {
        {1.0, 0.2, 0.9},
        {0.2, 1.0, 0.5},
        {0.9, 0.5, 1.0},
    };
    const auto result = match::greedy_reorder(m);
    EXPECT_EQ(result.order, (std::vector<int64_t>{0, 2, 1}));
    EXPECT_DOUBLE_EQ(result.chained_match, 0.9 + 0.5);
    EXPECT_DOUBLE_EQ(result.baseline_match, 0.2 + 0.5);
}

TEST(Reorder, HandlesDegenerateSizes)
{
    EXPECT_TRUE(match::greedy_reorder(
                    std::vector<std::vector<double>>{})
                    .order.empty());
    const auto one = match::greedy_reorder(
        std::vector<std::vector<double>>{{1.0}});
    EXPECT_EQ(one.order, (std::vector<int64_t>{0}));
}

TEST(FeatureCache, CachesTopOfRanking)
{
    std::vector<graph::NodeId> ranking = {5, 3, 1, 0, 2, 4};
    match::StaticFeatureCache cache(6, ranking, 2);
    EXPECT_TRUE(cache.contains(5));
    EXPECT_TRUE(cache.contains(3));
    EXPECT_FALSE(cache.contains(1));
}

TEST(FeatureCache, HitRateAccounting)
{
    std::vector<graph::NodeId> ranking = {0, 1, 2, 3};
    match::StaticFeatureCache cache(4, ranking, 2);
    std::vector<graph::NodeId> batch = {0, 1, 2, 3};
    EXPECT_EQ(cache.lookup_batch(batch), 2); // 2 misses
    EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
    cache.reset_stats();
    EXPECT_EQ(cache.hits(), 0);
}

TEST(FeatureCache, DegreeRankingPrefersHubs)
{
    graph::RmatParams params;
    params.num_nodes = 512;
    params.num_edges = 8192;
    graph::CsrGraph g = graph::generate_rmat(params);
    const auto ranking = match::degree_ranking(g);
    ASSERT_EQ(ranking.size(), size_t(g.num_nodes()));
    for (size_t i = 1; i < ranking.size(); ++i)
        EXPECT_GE(g.degree(ranking[i - 1]), g.degree(ranking[i]));
}

TEST(FeatureCache, PresampleRankingSortsByFrequency)
{
    std::vector<int64_t> freq = {5, 100, 7, 0};
    const auto ranking = match::presample_ranking(freq);
    EXPECT_EQ(ranking[0], 1);
    EXPECT_EQ(ranking[1], 2);
    EXPECT_EQ(ranking[2], 0);
    EXPECT_EQ(ranking[3], 3);
}

TEST(FeatureCache, ZeroCapacityNeverHits)
{
    match::StaticFeatureCache cache(10, {1, 2, 3}, 0);
    std::vector<graph::NodeId> batch = {1, 2, 3};
    EXPECT_EQ(cache.lookup_batch(batch), 3);
    EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

// ---------------------------------------------------------------------
// Warmup traces
// ---------------------------------------------------------------------

TEST(WarmupTrace, SaveLoadRoundTripsFrequencies)
{
    match::WarmupTrace trace;
    trace.frequencies = {0, 5, 17, 0, 123456789012345LL, 2};
    EXPECT_FALSE(trace.empty());

    const std::string path =
        testing::TempDir() + "fastgl_warmup_roundtrip.trace";
    ASSERT_TRUE(match::save_warmup_trace(path, trace));
    const match::WarmupTrace loaded = match::load_warmup_trace(path);
    EXPECT_EQ(loaded.frequencies, trace.frequencies);
    std::remove(path.c_str());
}

TEST(WarmupTrace, LoadOfMissingOrCorruptFileIsEmptyNotFatal)
{
    EXPECT_TRUE(
        match::load_warmup_trace("/nonexistent/warmup.trace").empty());

    const std::string path =
        testing::TempDir() + "fastgl_warmup_corrupt.trace";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not-a-warmup-trace 3\n1\n2\n3\n", f);
    std::fclose(f);
    EXPECT_TRUE(match::load_warmup_trace(path).empty());
    std::remove(path.c_str());
}

TEST(WarmupTrace, RankingFromFrequenciesIsHottestFirst)
{
    match::WarmupTrace trace;
    trace.frequencies = {3, 9, 0, 7};
    const std::vector<graph::NodeId> ranking =
        match::presample_ranking(trace.frequencies);
    ASSERT_EQ(ranking.size(), 4u);
    EXPECT_EQ(ranking[0], 1);
    EXPECT_EQ(ranking[1], 3);
    EXPECT_EQ(ranking[2], 0);
    EXPECT_EQ(ranking[3], 2);
}

} // namespace
} // namespace fastgl
