/**
 * @file
 * Tests for the executable Memory-Aware kernel (Section 4.2's tiled
 * schedule): numerical equality with the reference aggregation, geometry
 * planning against hardware limits, parallel == sequential, and staging
 * footprint bounds.
 */
#include <gtest/gtest.h>

#include "compute/a3.h"
#include "compute/aggregate.h"
#include "compute/memory_aware_exec.h"
#include "graph/generators.h"
#include "sample/neighbor_sampler.h"
#include "util/rng.h"

namespace fastgl {
namespace {

using compute::Tensor;

sample::SampledSubgraph
sampled(int seeds_n, std::vector<int> fanouts, uint64_t seed)
{
    static graph::CsrGraph g = [] {
        graph::RmatParams params;
        params.num_nodes = 5000;
        params.num_edges = 50000;
        params.seed = 77;
        return graph::generate_rmat(params);
    }();
    sample::NeighborSamplerOptions opts;
    opts.fanouts = std::move(fanouts);
    opts.seed = seed;
    sample::NeighborSampler sampler(g, opts);
    std::vector<graph::NodeId> seeds;
    for (int i = 0; i < seeds_n; ++i)
        seeds.push_back(graph::NodeId(i * 3 + 1));
    return sampler.sample(seeds);
}

void
expect_equal(const Tensor &a, const Tensor &b)
{
    ASSERT_TRUE(a.same_shape(b));
    for (int64_t r = 0; r < a.rows(); ++r)
        for (int64_t c = 0; c < a.cols(); ++c)
            ASSERT_FLOAT_EQ(a.at(r, c), b.at(r, c))
                << "(" << r << "," << c << ")";
}

/** Dims chosen to exercise exact tiles, ragged tiles and tiny dims. */
class TiledEquality : public ::testing::TestWithParam<int> {};

TEST_P(TiledEquality, MatchesReferenceAggregation)
{
    const int dim = GetParam();
    const auto sg = sampled(50, {5, 10}, 3);
    const auto &block = sg.blocks.back();
    const auto weights = compute::gcn_edge_weights(block);

    util::Rng rng(9);
    Tensor in = Tensor::randn(sg.num_nodes(), dim, rng, 1.0f);
    Tensor reference(block.num_targets(), dim);
    compute::aggregate_forward(block, weights, in, reference);

    Tensor tiled(block.num_targets(), dim);
    const auto geometry =
        compute::plan_geometry(16, dim, sim::rtx3090());
    const auto stats = compute::memory_aware_forward(
        block, weights, in, tiled, geometry);
    expect_equal(tiled, reference);
    EXPECT_GT(stats.blocks_launched, 0);
    EXPECT_EQ(stats.column_tiles,
              (dim + geometry.dims_per_block - 1) /
                  geometry.dims_per_block);
}

INSTANTIATE_TEST_SUITE_P(Dims, TiledEquality,
                         ::testing::Values(1, 7, 32, 33, 64, 200));

TEST(MemoryAwareExec, ParallelEqualsSequential)
{
    const auto sg = sampled(120, {5, 10, 15}, 5);
    const auto &block = sg.blocks.back();
    const auto weights = compute::unit_edge_weights(block);
    util::Rng rng(4);
    Tensor in = Tensor::randn(sg.num_nodes(), 48, rng, 1.0f);

    const auto geometry = compute::plan_geometry(16, 48, sim::rtx3090());
    Tensor seq(block.num_targets(), 48);
    compute::memory_aware_forward(block, weights, in, seq, geometry);

    util::ThreadPool pool(4);
    Tensor par(block.num_targets(), 48);
    compute::memory_aware_forward(block, weights, in, par, geometry,
                                  &pool);
    expect_equal(par, seq);
}

TEST(MemoryAwareExec, StagingFootprintRespectsFormula)
{
    // The staging high-water mark must not exceed 4XY + 4X*max_deg.
    const auto sg = sampled(60, {5, 10}, 7);
    const auto &block = sg.blocks.back();
    const auto weights = compute::gcn_edge_weights(block);
    util::Rng rng(2);
    Tensor in = Tensor::randn(sg.num_nodes(), 64, rng, 1.0f);
    Tensor out(block.num_targets(), 64);

    graph::EdgeId max_deg = 0;
    for (int64_t t = 0; t < block.num_targets(); ++t)
        max_deg = std::max(max_deg,
                           block.indptr[t + 1] - block.indptr[t]);

    const auto geometry =
        compute::plan_geometry(max_deg, 64, sim::rtx3090());
    const auto stats = compute::memory_aware_forward(
        block, weights, in, out, geometry);
    EXPECT_LE(stats.max_shared_bytes,
              geometry.shared_bytes(double(max_deg)));
    EXPECT_GT(stats.max_shared_bytes, 0u);
}

TEST(MemoryAwareExec, PlannerShrinksXForHugeDegrees)
{
    const auto spec = sim::rtx3090();
    const auto small = compute::plan_geometry(10, 64, spec);
    EXPECT_EQ(small.targets_per_block, 8); // paper default fits
    const auto huge = compute::plan_geometry(20000, 64, spec);
    EXPECT_LT(huge.targets_per_block, 8);
    EXPECT_LE(huge.shared_bytes(20000.0), spec.shared_limit_per_block);
    // Absurd degrees cannot fit at any X; the planner bottoms out at
    // X=1 (the cost model then falls back to the naive path).
    EXPECT_EQ(compute::plan_geometry(200000, 64, spec).targets_per_block,
              1);
}

TEST(MemoryAwareExec, PlannerCapsYAtFeatureDim)
{
    const auto geometry = compute::plan_geometry(10, 5, sim::rtx3090());
    EXPECT_EQ(geometry.dims_per_block, 5);
}

TEST(MemoryAwareExec, A3FacadeDispatchesBothPaths)
{
    const auto sg = sampled(40, {5, 10}, 11);
    const auto &block = sg.blocks.back();
    const auto weights = compute::gcn_edge_weights(block);
    util::Rng rng(6);
    Tensor in = Tensor::randn(sg.num_nodes(), 40, rng, 1.0f);

    Tensor aware(block.num_targets(), 40);
    compute::a3::Options opts;
    const auto stats =
        compute::a3::forward(block, weights, in, aware, opts);
    EXPECT_GT(stats.blocks_launched, 0);

    Tensor naive(block.num_targets(), 40);
    opts.memory_aware = false;
    const auto none =
        compute::a3::forward(block, weights, in, naive, opts);
    EXPECT_EQ(none.blocks_launched, 0);
    expect_equal(aware, naive);

    // And the backward facade matches the reference scatter.
    Tensor gout = Tensor::randn(block.num_targets(), 40, rng, 1.0f);
    Tensor gin_a(sg.num_nodes(), 40), gin_b(sg.num_nodes(), 40);
    compute::a3::backward(block, weights, gout, gin_a);
    compute::aggregate_backward(block, weights, gout, gin_b);
    expect_equal(gin_a, gin_b);
}

TEST(MemoryAwareExec, SingleTargetBlock)
{
    sample::LayerBlock block;
    block.targets = {0};
    block.indptr = {0, 2};
    block.sources = {0, 1};
    std::vector<float> weights = {0.5f, 0.5f};
    Tensor in(2, 3);
    in.fill(4.0f);
    Tensor out(1, 3);
    const auto geometry = compute::plan_geometry(2, 3, sim::rtx3090());
    compute::memory_aware_forward(block, weights, in, out, geometry);
    for (int64_t c = 0; c < 3; ++c)
        EXPECT_FLOAT_EQ(out.at(0, c), 4.0f);
}

} // namespace
} // namespace fastgl
