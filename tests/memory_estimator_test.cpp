/**
 * @file
 * Tests for the full-scale memory estimator behind Tables 1 and 9.
 */
#include <gtest/gtest.h>

#include "core/memory_estimator.h"
#include "sim/gpu_spec.h"

namespace fastgl {
namespace {

TEST(MemoryEstimator, FrontierGrowsAndSaturates)
{
    core::MemoryEstimatorOptions opts;
    const auto spec = graph::full_scale_spec(graph::DatasetId::kReddit);
    const auto uniques = core::expected_unique_frontier(spec, opts);
    ASSERT_EQ(uniques.size(), 4u); // seeds + 3 hops
    for (size_t i = 1; i < uniques.size(); ++i)
        EXPECT_GE(uniques[i], uniques[i - 1]);
    // Cannot exceed the reachable pool.
    EXPECT_LE(uniques.back(),
              opts.reachable_fraction * double(spec.nodes) + 1.0);
}

TEST(MemoryEstimator, SmallGraphsLeavePlentyOfMemory)
{
    // Paper Table 1: Reddit leaves 13 GB, Products 11 GB.
    const uint64_t capacity = sim::rtx3090().global_bytes;
    for (auto id :
         {graph::DatasetId::kReddit, graph::DatasetId::kProducts}) {
        const auto est = core::estimate_training_memory(id);
        EXPECT_GT(est.remaining(capacity), 8ull << 30)
            << graph::dataset_name(id);
    }
}

TEST(MemoryEstimator, LargeGraphsAreMemoryStarved)
{
    // Paper Table 1: MAG leaves 520 MB, Papers100M 1 GB.
    const uint64_t capacity = sim::rtx3090().global_bytes;
    for (auto id :
         {graph::DatasetId::kMag, graph::DatasetId::kPapers100M}) {
        const auto est = core::estimate_training_memory(id);
        EXPECT_LT(est.remaining(capacity), 4ull << 30)
            << graph::dataset_name(id);
    }
}

TEST(MemoryEstimator, OrderingMatchesPaperTable1)
{
    const uint64_t capacity = sim::rtx3090().global_bytes;
    const auto rd = core::estimate_training_memory(
        graph::DatasetId::kReddit);
    const auto mag =
        core::estimate_training_memory(graph::DatasetId::kMag);
    EXPECT_GT(rd.remaining(capacity), mag.remaining(capacity));
}

TEST(MemoryEstimator, ComponentsArePositiveAndSum)
{
    const auto est =
        core::estimate_training_memory(graph::DatasetId::kProducts);
    EXPECT_GT(est.features, 0u);
    EXPECT_GT(est.activations, 0u);
    EXPECT_GT(est.topology, 0u);
    EXPECT_GT(est.params, 0u);
    EXPECT_EQ(est.total(), est.features + est.activations +
                               est.topology + est.params +
                               est.workspace);
}

TEST(MemoryEstimator, FastGlTopologyOnlyUsesLess)
{
    core::MemoryEstimatorOptions dgl;
    core::MemoryEstimatorOptions fastgl;
    fastgl.fastgl_topology_only = true;
    const auto a = core::estimate_training_memory(
        graph::DatasetId::kPapers100M, dgl);
    const auto b = core::estimate_training_memory(
        graph::DatasetId::kPapers100M, fastgl);
    EXPECT_LT(b.topology, a.topology);
    EXPECT_LE(b.total(), a.total());
}

TEST(MemoryEstimator, BiggerBatchUsesMoreMemory)
{
    core::MemoryEstimatorOptions small;
    small.batch_size = 2000;
    core::MemoryEstimatorOptions large;
    large.batch_size = 12000;
    EXPECT_LT(
        core::estimate_training_memory(graph::DatasetId::kMag, small)
            .total(),
        core::estimate_training_memory(graph::DatasetId::kMag, large)
            .total());
}

TEST(MemoryEstimator, RemainingClampsAtZero)
{
    core::MemoryEstimatorOptions opts;
    opts.hidden_dim = 4096; // blow past 24 GB
    const auto est = core::estimate_training_memory(
        graph::DatasetId::kPapers100M, opts);
    EXPECT_EQ(est.remaining(sim::rtx3090().global_bytes), 0u);
}

} // namespace
} // namespace fastgl
