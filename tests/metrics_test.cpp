/**
 * @file
 * Tests for the classification metrics (confusion matrix, F1).
 */
#include <gtest/gtest.h>

#include "compute/metrics.h"

namespace fastgl {
namespace {

using compute::ConfusionMatrix;
using compute::Tensor;

TEST(Metrics, PerfectPredictions)
{
    ConfusionMatrix cm(3);
    for (int c = 0; c < 3; ++c)
        for (int i = 0; i < 5; ++i)
            cm.add(c, c);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
    EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
    EXPECT_DOUBLE_EQ(cm.micro_f1(), 1.0);
    EXPECT_EQ(cm.total(), 15);
}

TEST(Metrics, KnownConfusion)
{
    // 2 classes: class 0 -> 3 right, 1 wrong; class 1 -> 2 right, 0 wrong.
    ConfusionMatrix cm(2);
    cm.add(0, 0);
    cm.add(0, 0);
    cm.add(0, 0);
    cm.add(0, 1);
    cm.add(1, 1);
    cm.add(1, 1);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 5.0 / 6.0);
    EXPECT_DOUBLE_EQ(cm.recall(0), 0.75);
    EXPECT_DOUBLE_EQ(cm.precision(0), 1.0);
    EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
    EXPECT_DOUBLE_EQ(cm.precision(1), 2.0 / 3.0);
    // F1(0) = 2*1*.75/1.75, F1(1) = 2*(2/3)*1/(5/3)
    EXPECT_NEAR(cm.f1(0), 2.0 * 0.75 / 1.75, 1e-12);
    EXPECT_NEAR(cm.f1(1), 0.8, 1e-12);
    EXPECT_NEAR(cm.macro_f1(), (2.0 * 0.75 / 1.75 + 0.8) / 2.0, 1e-12);
}

TEST(Metrics, AddBatchUsesArgmax)
{
    ConfusionMatrix cm(3);
    Tensor logits(2, 3);
    logits.at(0, 2) = 5.0f; // predict 2
    logits.at(1, 0) = 1.0f; // predict 0
    std::vector<int> labels = {2, 1};
    cm.add_batch(logits, labels);
    EXPECT_EQ(cm.at(2, 2), 1);
    EXPECT_EQ(cm.at(1, 0), 1);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 0.5);
}

TEST(Metrics, EmptyClassesContributeZeroF1)
{
    ConfusionMatrix cm(4);
    cm.add(0, 0);
    EXPECT_DOUBLE_EQ(cm.f1(3), 0.0);
    EXPECT_DOUBLE_EQ(cm.macro_f1(), 0.25);
}

TEST(Metrics, ResetClears)
{
    ConfusionMatrix cm(2);
    cm.add(0, 1);
    cm.reset();
    EXPECT_EQ(cm.total(), 0);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
}

TEST(Metrics, RejectsOutOfRange)
{
    ConfusionMatrix cm(2);
    EXPECT_DEATH(cm.add(2, 0), "truth label out of range");
    EXPECT_DEATH(cm.add(0, -1), "prediction out of range");
}

} // namespace
} // namespace fastgl
