/**
 * @file
 * Tests for the loss and the stacked GnnModel: shapes, loss gradient
 * correctness, and a tiny overfitting run per model type.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "compute/gnn_model.h"
#include "compute/loss.h"
#include "compute/optimizer.h"
#include "graph/generators.h"
#include "sample/neighbor_sampler.h"
#include "util/rng.h"

namespace fastgl {
namespace {

using compute::Tensor;

TEST(Loss, UniformLogitsGiveLogC)
{
    Tensor logits(4, 8); // all zeros -> uniform distribution
    std::vector<int> labels = {0, 1, 2, 3};
    const auto result = compute::softmax_cross_entropy(logits, labels);
    EXPECT_NEAR(result.loss, std::log(8.0), 1e-5);
}

TEST(Loss, PerfectPredictionHasLowLossHighAccuracy)
{
    Tensor logits(3, 4);
    std::vector<int> labels = {1, 2, 0};
    for (int64_t r = 0; r < 3; ++r)
        logits.at(r, labels[size_t(r)]) = 20.0f;
    const auto result = compute::softmax_cross_entropy(logits, labels);
    EXPECT_LT(result.loss, 1e-4);
    EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
}

TEST(Loss, GradientMatchesFiniteDifferences)
{
    util::Rng rng(8);
    Tensor logits = Tensor::randn(3, 5, rng, 1.0f);
    std::vector<int> labels = {4, 0, 2};
    const auto base = compute::softmax_cross_entropy(logits, labels);

    constexpr float kEps = 1e-3f;
    for (int64_t r = 0; r < 3; ++r) {
        for (int64_t c = 0; c < 5; ++c) {
            const float saved = logits.at(r, c);
            logits.at(r, c) = saved + kEps;
            const double up =
                compute::softmax_cross_entropy(logits, labels).loss;
            logits.at(r, c) = saved - kEps;
            const double down =
                compute::softmax_cross_entropy(logits, labels).loss;
            logits.at(r, c) = saved;
            const double numeric = (up - down) / (2.0 * kEps);
            EXPECT_NEAR(base.grad_logits.at(r, c), numeric, 1e-3);
        }
    }
}

TEST(Loss, GradientRowsSumToZero)
{
    // softmax-CE gradient rows sum to zero (probabilities minus onehot).
    util::Rng rng(9);
    Tensor logits = Tensor::randn(6, 7, rng, 2.0f);
    std::vector<int> labels = {0, 1, 2, 3, 4, 5};
    const auto result = compute::softmax_cross_entropy(logits, labels);
    for (int64_t r = 0; r < 6; ++r) {
        double s = 0.0;
        for (int64_t c = 0; c < 7; ++c)
            s += result.grad_logits.at(r, c);
        EXPECT_NEAR(s, 0.0, 1e-5);
    }
}

TEST(ModelTypeName, Printable)
{
    EXPECT_STREQ(compute::model_type_name(compute::ModelType::kGcn),
                 "GCN");
    EXPECT_STREQ(compute::model_type_name(compute::ModelType::kGin),
                 "GIN");
    EXPECT_STREQ(compute::model_type_name(compute::ModelType::kGat),
                 "GAT");
}

class ModelStack : public ::testing::TestWithParam<compute::ModelType>
{
};

TEST_P(ModelStack, ForwardProducesSeedLogits)
{
    graph::CsrGraph g = graph::generate_ring(500, 4, 1);
    sample::NeighborSamplerOptions sopts;
    sopts.fanouts = {3, 4};
    sopts.seed = 2;
    sample::NeighborSampler sampler(g, sopts);
    std::vector<graph::NodeId> seeds = {1, 2, 3, 4, 5, 6, 7, 8};
    const auto sg = sampler.sample(seeds);

    compute::ModelConfig cfg;
    cfg.type = GetParam();
    cfg.in_dim = 12;
    cfg.hidden_dim = 16;
    cfg.num_classes = 5;
    cfg.num_layers = 2;
    compute::GnnModel model(cfg);

    util::Rng rng(3);
    Tensor x = Tensor::randn(sg.num_nodes(), 12, rng, 0.5f);
    Tensor logits = model.forward(sg, x);
    EXPECT_EQ(logits.rows(), sg.num_seeds);
    EXPECT_EQ(logits.cols(), 5);
    EXPECT_FALSE(model.parameters().empty());
    EXPECT_GT(model.param_bytes(), 0u);
}

TEST_P(ModelStack, OverfitsTinyProblem)
{
    // End-to-end learning sanity: loss must drop substantially when
    // training repeatedly on one small batch.
    graph::CsrGraph g = graph::generate_ring(200, 3, 7);
    sample::NeighborSamplerOptions sopts;
    sopts.fanouts = {3, 3};
    sopts.seed = 4;
    sample::NeighborSampler sampler(g, sopts);
    std::vector<graph::NodeId> seeds = {10, 20, 30, 40};
    const auto sg = sampler.sample(seeds);

    compute::ModelConfig cfg;
    cfg.type = GetParam();
    cfg.in_dim = 8;
    cfg.hidden_dim = 16;
    cfg.num_classes = 3;
    cfg.num_layers = 2;
    cfg.seed = 11;
    compute::GnnModel model(cfg);
    compute::Adam optimizer(0.02f);

    util::Rng rng(5);
    Tensor x = Tensor::randn(sg.num_nodes(), 8, rng, 1.0f);
    std::vector<int> labels = {0, 1, 2, 1};

    double first = 0.0, last = 0.0;
    for (int step = 0; step < 60; ++step) {
        Tensor logits = model.forward(sg, x);
        const auto loss = compute::softmax_cross_entropy(logits, labels);
        if (step == 0)
            first = loss.loss;
        last = loss.loss;
        model.zero_grad();
        model.backward(sg, loss.grad_logits);
        optimizer.step(model.parameters());
    }
    EXPECT_LT(last, 0.5 * first)
        << "no learning: first=" << first << " last=" << last;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelStack,
                         ::testing::Values(compute::ModelType::kGcn,
                                           compute::ModelType::kGin,
                                           compute::ModelType::kGat),
                         [](const auto &info) {
                             return compute::model_type_name(info.param);
                         });

TEST(ModelStack, LayerDimsChainCorrectly)
{
    compute::ModelConfig cfg;
    cfg.type = compute::ModelType::kGcn;
    cfg.in_dim = 100;
    cfg.hidden_dim = 64;
    cfg.num_classes = 10;
    cfg.num_layers = 3;
    compute::GnnModel model(cfg);
    const auto dims = model.layer_dims();
    ASSERT_EQ(dims.size(), 3u);
    EXPECT_EQ(dims[0], std::make_pair(int64_t(100), int64_t(64)));
    EXPECT_EQ(dims[1], std::make_pair(int64_t(64), int64_t(64)));
    EXPECT_EQ(dims[2], std::make_pair(int64_t(64), int64_t(10)));
}

TEST(ModelStack, GatHiddenDimIsHeadsTimesHeadDim)
{
    compute::ModelConfig cfg;
    cfg.type = compute::ModelType::kGat;
    cfg.in_dim = 32;
    cfg.num_classes = 6;
    cfg.num_layers = 2;
    cfg.gat_heads = 8;
    cfg.gat_head_dim = 8;
    compute::GnnModel model(cfg);
    const auto dims = model.layer_dims();
    EXPECT_EQ(dims[0].second, 64);
    EXPECT_EQ(dims[1].first, 64);
    EXPECT_EQ(dims[1].second, 6);
}

} // namespace
} // namespace fastgl
