/**
 * @file
 * Tests for the multi-GPU layer: the interconnect model
 * (sim::PeerTopology), the partition-sharded feature cache
 * (match::PartitionedFeatureCache), the generalized N-device epoch
 * simulation (core::simulate_epoch_multi) including the exact
 * single-trainer regression, and the multi-GPU serve/trainer
 * integration's determinism.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/multi_gpu.h"
#include "core/timeline.h"
#include "core/trainer.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "match/feature_cache.h"
#include "match/partitioned_cache.h"
#include "serve/load_generator.h"
#include "serve/server.h"
#include "sim/gpu_spec.h"
#include "sim/peer_link.h"

namespace fastgl {
namespace {

// ---------------------------------------------------------------- sim

TEST(PeerTopology, KindsFollowNvlinkSpan)
{
    sim::PeerTopologyOptions opts;
    opts.num_devices = 4;
    opts.nvlink_span = 1; // ring neighbours only
    sim::PeerTopology topo(sim::rtx3090(), opts);
    EXPECT_EQ(topo.kind(0, 0), sim::PeerLinkKind::kLoopback);
    EXPECT_EQ(topo.kind(0, 1), sim::PeerLinkKind::kNvlink);
    EXPECT_EQ(topo.kind(0, 3), sim::PeerLinkKind::kNvlink); // ring wrap
    EXPECT_EQ(topo.kind(0, 2), sim::PeerLinkKind::kPciePeer);
    EXPECT_EQ(topo.kind(2, 0), sim::PeerLinkKind::kPciePeer);
}

TEST(PeerTopology, NvlinkBeatsPciePeerAndLoopbackIsFree)
{
    sim::PeerTopologyOptions opts;
    opts.num_devices = 4;
    sim::PeerTopology topo(sim::rtx3090(), opts);
    const uint64_t mb = 1 << 20;
    EXPECT_EQ(topo.estimate(1, 1, mb), 0.0);
    EXPECT_LT(topo.estimate(0, 1, mb), topo.estimate(0, 2, mb));
}

TEST(PeerTopology, TransferAccumulatesPerLinkStats)
{
    sim::PeerTopologyOptions opts;
    opts.num_devices = 2;
    sim::PeerTopology topo(sim::rtx3090(), opts);
    const double s1 = topo.transfer(0, 1, 1000);
    const double s2 = topo.transfer(0, 1, 3000);
    EXPECT_GT(s1, 0.0);
    EXPECT_GT(s2, s1);
    const sim::PeerLinkStats &link = topo.link(0, 1);
    EXPECT_EQ(link.bytes, 4000u);
    EXPECT_EQ(link.transfers, 2);
    EXPECT_DOUBLE_EQ(link.seconds, s1 + s2);
    EXPECT_EQ(topo.link(1, 0).transfers, 0);
    EXPECT_EQ(topo.active_links().size(), 1u);
    // Loopback is free and never recorded.
    EXPECT_EQ(topo.transfer(1, 1, 1 << 20), 0.0);
    EXPECT_EQ(topo.total_transfers(), 2);
    topo.reset();
    EXPECT_EQ(topo.total_bytes(), 0u);
    EXPECT_TRUE(topo.active_links().empty());
}

// -------------------------------------------------------------- match

graph::CsrGraph
cache_graph(int nodes = 3000)
{
    graph::RmatParams params;
    params.num_nodes = nodes;
    params.num_edges = nodes * 8;
    params.seed = 77;
    return graph::generate_rmat(params);
}

TEST(PartitionedCache, ShardedCoversMoreDistinctRowsThanReplicated)
{
    graph::CsrGraph g = cache_graph();
    const auto parts = graph::partition_ldg(g, 4);
    const auto ranking = match::degree_ranking(g);
    const int64_t per_device = 200;
    match::PartitionedFeatureCache sharded(
        parts, ranking, per_device, 4, match::ShardMode::kSharded,
        match::RemotePolicy::kAlwaysRemote);
    match::PartitionedFeatureCache replicated(
        parts, ranking, per_device, 4, match::ShardMode::kReplicated,
        match::RemotePolicy::kAlwaysRemote);
    EXPECT_EQ(replicated.distinct_resident_rows(), per_device);
    // Same per-device budget, ~4x the coverage.
    EXPECT_GT(sharded.distinct_resident_rows(),
              2 * replicated.distinct_resident_rows());
}

/**
 * An alternating even/odd partitioning: unlike a real partitioner
 * (which may give one partition the whole hub core), this guarantees
 * the hot ranking interleaves both devices' shards, so remote-hit
 * paths are exercised deterministically.
 */
graph::Partitioning
alternating_partition(const graph::CsrGraph &g, int k)
{
    graph::Partitioning parts;
    parts.members.resize(size_t(k));
    parts.part_of.resize(size_t(g.num_nodes()));
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
        parts.part_of[size_t(u)] = int32_t(u % k);
        parts.members[size_t(u % k)].push_back(u);
    }
    return parts;
}

TEST(PartitionedCache, RemoteHitsChargePeerNotHost)
{
    graph::CsrGraph g = cache_graph();
    const auto parts = alternating_partition(g, 2);
    const auto ranking = match::degree_ranking(g);
    match::PartitionedFeatureCache cache(
        parts, ranking, 400, 2, match::ShardMode::kSharded,
        match::RemotePolicy::kAlwaysRemote);
    // Look up the globally hottest rows from device 0: rows owned by
    // device 1's partitions must come back as remote hits.
    const std::span<const graph::NodeId> hot(ranking.data(), 300);
    const match::ShardLookup lookup = cache.lookup_batch(0, hot);
    EXPECT_GT(lookup.local_hits, 0);
    EXPECT_GT(lookup.remote_hits, 0);
    EXPECT_EQ(lookup.remote_rows_by_device[0], 0);
    EXPECT_EQ(lookup.remote_rows_by_device[1], lookup.remote_hits);
    EXPECT_EQ(lookup.local_hits + lookup.remote_hits + lookup.misses,
              300);
    const match::PartitionCacheCounters totals = cache.totals();
    EXPECT_EQ(totals.remote_hits, lookup.remote_hits);
}

TEST(PartitionedCache, FetchAndCacheOverlayConvertsRemoteToLocal)
{
    graph::CsrGraph g = cache_graph();
    const auto parts = alternating_partition(g, 2);
    const auto ranking = match::degree_ranking(g);
    match::PartitionedFeatureCache cache(
        parts, ranking, 400, 2, match::ShardMode::kSharded,
        match::RemotePolicy::kFetchAndCache);
    const std::span<const graph::NodeId> hot(ranking.data(), 200);
    const match::ShardLookup first = cache.lookup_batch(0, hot);
    ASSERT_GT(first.remote_hits, 0);
    const int64_t resident_before = cache.resident_rows(0);
    // Second pass over the same rows: the overlay now holds (some of)
    // the previously remote rows locally.
    const match::ShardLookup second = cache.lookup_batch(0, hot);
    EXPECT_LT(second.remote_hits, first.remote_hits);
    EXPECT_GT(second.local_hits, first.local_hits);
    // reset_overlay restores the post-construction shard exactly.
    cache.reset_overlay();
    cache.reset_stats();
    EXPECT_LT(cache.resident_rows(0), resident_before);
    const match::ShardLookup again = cache.lookup_batch(0, hot);
    EXPECT_EQ(again.local_hits, first.local_hits);
    EXPECT_EQ(again.remote_hits, first.remote_hits);
    EXPECT_EQ(again.misses, first.misses);
}

// --------------------------------------------------- core (timeline)

std::vector<core::BatchStageTimes>
stage_times(int n, double scale = 1.0, uint64_t salt = 1)
{
    std::vector<core::BatchStageTimes> batches;
    for (int i = 0; i < n; ++i) {
        core::BatchStageTimes t;
        // Deterministic pseudo-varied durations (no RNG needed).
        const double v = double((i * 2654435761u + salt) % 97) / 97.0;
        t.sample = scale * (1e-3 + 1e-3 * v);
        t.io = scale * (8e-4 + 6e-4 * v);
        t.compute = scale * (2e-3 + 1e-3 * v);
        batches.push_back(t);
    }
    return batches;
}

TEST(MultiGpuTimeline, SymmetricReproducesLegacyMakespanExactly)
{
    const auto batches = stage_times(40);
    for (const bool overlap : {false, true}) {
        for (const bool dedicated : {false, true}) {
            core::TimelineConfig legacy_cfg;
            legacy_cfg.overlap_copy_compute = overlap;
            legacy_cfg.dedicated_sampler = dedicated;
            legacy_cfg.allreduce = 4.2e-4;
            const double legacy =
                core::simulate_epoch(batches, legacy_cfg).makespan;

            for (const int devices : {1, 2, 4}) {
                core::MultiGpuConfig cfg;
                cfg.mode = core::MultiGpuMode::kSymmetric;
                cfg.base = legacy_cfg;
                cfg.num_devices = devices;
                const std::vector<std::vector<core::MultiGpuBatch>>
                    per_device(size_t(devices),
                               core::to_multi_gpu_batches(batches));
                const auto result =
                    core::simulate_epoch_multi(per_device, cfg);
                // Bit-exact: symmetric ranks hit the allreduce barrier
                // simultaneously, so the generalized schedule performs
                // the identical float operations as the legacy
                // "simulate one, take the max" model.
                EXPECT_EQ(result.makespan, legacy)
                    << "devices=" << devices << " overlap=" << overlap
                    << " dedicated=" << dedicated;
            }
        }
    }
}

TEST(MultiGpuTimeline, AsymmetricTrainersBoundedByBarrier)
{
    core::TimelineConfig base;
    base.allreduce = 5e-4;
    core::MultiGpuConfig cfg;
    cfg.mode = core::MultiGpuMode::kSymmetric;
    cfg.base = base;
    cfg.num_devices = 2;
    // Device 1's batches are 3x slower: the ring barrier must drag
    // device 0 down to (at least) the slow rank's standalone makespan.
    const std::vector<std::vector<core::MultiGpuBatch>> per_device = {
        core::to_multi_gpu_batches(stage_times(20, 1.0)),
        core::to_multi_gpu_batches(stage_times(20, 3.0)),
    };
    const auto result = core::simulate_epoch_multi(per_device, cfg);
    const double slow =
        core::simulate_epoch(stage_times(20, 3.0), base).makespan;
    EXPECT_GE(result.makespan, slow);
    ASSERT_EQ(result.devices.size(), 2u);
    EXPECT_EQ(result.devices[0].batches_trained, 20);
    EXPECT_EQ(result.devices[1].batches_trained, 20);
    EXPECT_GT(result.allreduce_seconds, 0.0);
}

TEST(MultiGpuTimeline, FactoredTrainsEveryBatchDeterministically)
{
    core::MultiGpuConfig cfg;
    cfg.mode = core::MultiGpuMode::kFactored;
    cfg.base.allreduce = 2e-4;
    cfg.num_devices = 4;
    cfg.num_samplers = 2;
    const std::vector<std::vector<core::MultiGpuBatch>> per_device(
        4, core::to_multi_gpu_batches(stage_times(15)));
    sim::PeerTopologyOptions popts;
    popts.num_devices = 4;
    sim::PeerTopology topo_a(sim::rtx3090(), popts);
    sim::PeerTopology topo_b(sim::rtx3090(), popts);
    const auto a = core::simulate_epoch_multi(per_device, cfg, &topo_a);
    const auto b = core::simulate_epoch_multi(per_device, cfg, &topo_b);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.makespan, b.makespan);
    int64_t trained = 0, sampled = 0;
    for (const auto &dev : a.devices) {
        trained += dev.batches_trained;
        sampled += dev.batches_sampled;
    }
    EXPECT_EQ(trained, 60);
    EXPECT_EQ(sampled, 60);
    // Fixed roles: samplers never train, trainers never sample.
    EXPECT_EQ(a.devices[0].batches_trained, 0);
    EXPECT_EQ(a.devices[3].batches_sampled, 0);
    EXPECT_TRUE(a.switches.empty());
}

TEST(MultiGpuTimeline, SwitcherRebalancesSampleBoundWork)
{
    // Sample-heavy workload: one dedicated sampler starves three
    // trainers, so the switcher must flip starving trainers into
    // samplers (and back into trainers once sampling drains).
    auto batches = stage_times(48);
    for (auto &t : batches) {
        t.sample *= 6.0;
        t.compute *= 0.5;
    }
    const std::vector<std::vector<core::MultiGpuBatch>> per_device(
        4, core::to_multi_gpu_batches(batches));
    core::MultiGpuConfig cfg;
    cfg.base.allreduce = 1e-4;
    cfg.num_devices = 4;
    cfg.num_samplers = 1;

    cfg.mode = core::MultiGpuMode::kFactored;
    const auto fixed = core::simulate_epoch_multi(per_device, cfg);
    cfg.mode = core::MultiGpuMode::kFactoredSwitcher;
    const auto dynamic = core::simulate_epoch_multi(per_device, cfg);

    EXPECT_FALSE(dynamic.switches.empty());
    EXPECT_LT(dynamic.makespan, fixed.makespan);
    int64_t trained = 0;
    for (const auto &dev : dynamic.devices)
        trained += dev.batches_trained;
    EXPECT_EQ(trained, 4 * 48);
}

TEST(MultiGpuTimeline, FactoredSwitcherGoldenFingerprint)
{
    // Golden pin of one factored-switcher schedule: any change to the
    // event loop's ordering, flip policy, or cost arithmetic shows up
    // here first. Update deliberately, never casually.
    auto batches = stage_times(32, 1.0, 9);
    for (auto &t : batches)
        t.sample *= 4.0;
    const std::vector<std::vector<core::MultiGpuBatch>> per_device(
        3, core::to_multi_gpu_batches(batches));
    core::MultiGpuConfig cfg;
    cfg.mode = core::MultiGpuMode::kFactoredSwitcher;
    cfg.base.allreduce = 3e-4;
    cfg.num_devices = 3;
    cfg.num_samplers = 1;
    sim::PeerTopologyOptions popts;
    popts.num_devices = 3;
    sim::PeerTopology topo(sim::rtx3090(), popts);
    const auto result =
        core::simulate_epoch_multi(per_device, cfg, &topo);
    EXPECT_EQ(result.fingerprint, 0xD429562CD00A345CULL);
}

TEST(MultiGpuTimeline, RouteByAffinityBalancesAndPreservesOrder)
{
    // 10 batches, partitions skewed onto partition 0.
    const std::vector<int32_t> parts = {0, 0, 0, 0, 0, 0, 1, 1, -1, 2};
    const auto routed = core::route_by_affinity(parts, 3);
    ASSERT_EQ(routed.size(), 3u);
    std::vector<bool> seen(parts.size(), false);
    for (const auto &list : routed) {
        // Balanced: no device above ceil(10/3) = 4.
        EXPECT_LE(list.size(), 4u);
        for (size_t i = 1; i < list.size(); ++i)
            EXPECT_LT(list[i - 1], list[i]);
        for (int64_t b : list) {
            EXPECT_FALSE(seen[size_t(b)]);
            seen[size_t(b)] = true;
        }
    }
    for (bool b : seen)
        EXPECT_TRUE(b);
    // Affinity: batch 6/7 (partition 1) stay on device 1, batch 9
    // (partition 2) on device 2.
    EXPECT_TRUE(std::find(routed[1].begin(), routed[1].end(), 6) !=
                routed[1].end());
    EXPECT_TRUE(std::find(routed[2].begin(), routed[2].end(), 9) !=
                routed[2].end());
}

// -------------------------------------------------- serve + trainer

TEST(MultiGpuServe, FingerprintStableAcrossWorkerCounts)
{
    graph::ReplicaOptions ropts;
    ropts.materialize_features = false;
    ropts.size_factor = 0.15;
    const graph::Dataset ds =
        graph::load_replica(graph::DatasetId::kReddit, ropts);

    serve::LoadGeneratorOptions lopts;
    lopts.rate_rps = 20000.0;
    lopts.num_requests = 256;
    lopts.seed = 11;

    uint64_t first = 0;
    for (const int threads : {1, 4, 8}) {
        serve::ServerOptions sopts;
        sopts.worker_threads = threads;
        sopts.num_gpus = 2;
        sopts.seed = 7;
        serve::Server server(ds, sopts);
        EXPECT_EQ(server.num_gpus(), 2);
        serve::LoadGenerator gen(server.popularity(), lopts);
        server.serve(gen.generate());
        const serve::ServingStats &st = server.last_stats();
        EXPECT_EQ(st.num_gpus, 2);
        if (threads == 1) {
            first = st.fingerprint;
            // The shards really split traffic: both remote feature
            // hits and multiple partitions' counters are populated.
            EXPECT_GT(st.feature_remote_hits, 0);
            ASSERT_EQ(st.per_partition.size(), 2u);
            EXPECT_GT(st.per_partition[0].lookups(), 0);
            EXPECT_GT(st.per_partition[1].lookups(), 0);
            EXPECT_FALSE(st.peer_links.empty());
        } else {
            EXPECT_EQ(st.fingerprint, first)
                << "threads=" << threads;
        }
    }
}

TEST(MultiGpuServe, ServeCallsAreRepeatable)
{
    // The fetch-and-cache overlay must be rewound between calls:
    // serving the same trace twice gives identical fingerprints.
    graph::ReplicaOptions ropts;
    ropts.materialize_features = false;
    ropts.size_factor = 0.1;
    const graph::Dataset ds =
        graph::load_replica(graph::DatasetId::kReddit, ropts);
    serve::ServerOptions sopts;
    sopts.num_gpus = 2;
    serve::Server server(ds, sopts);
    serve::LoadGeneratorOptions lopts;
    lopts.num_requests = 128;
    serve::LoadGenerator gen(server.popularity(), lopts);
    const auto trace = gen.generate();
    server.serve(trace);
    const uint64_t once = server.last_stats().fingerprint;
    server.serve(trace);
    EXPECT_EQ(server.last_stats().fingerprint, once);
}

TEST(MultiGpuTrainer, AccountingNeverMovesTheTrainingTrajectory)
{
    graph::ReplicaOptions ropts;
    ropts.size_factor = 0.05;
    const graph::Dataset ds =
        graph::load_replica(graph::DatasetId::kReddit, ropts);

    core::TrainerOptions single;
    single.max_batches = 3;
    single.feature_cache_ratio = 0.2;
    core::TrainerOptions multi = single;
    multi.num_gpus = 2;

    core::Trainer a(ds, single);
    core::Trainer b(ds, multi);
    const auto sa = a.train_epoch();
    const auto sb = b.train_epoch();
    // Bitwise-identical losses: the sharded pass is accounting only.
    ASSERT_EQ(sa.iteration_losses.size(), sb.iteration_losses.size());
    for (size_t i = 0; i < sa.iteration_losses.size(); ++i)
        EXPECT_EQ(sa.iteration_losses[i], sb.iteration_losses[i]);
    EXPECT_EQ(sa.num_gpus, 1);
    EXPECT_EQ(sb.num_gpus, 2);
    EXPECT_GT(sb.shard_totals.lookups(), 0);
    EXPECT_EQ(sb.per_partition.size(), 2u);
    EXPECT_NE(b.sharded_feature_cache(), nullptr);
    EXPECT_EQ(a.sharded_feature_cache(), nullptr);
}

} // namespace
} // namespace fastgl
