/**
 * @file
 * Tests for the out-of-core tiered feature store: StorageLink windowed
 * read arithmetic, IoScheduler coalescing/staging, prefetch-window
 * once-per-window issue discipline, partition-ordered relayout
 * round-trips, tier classification, bit-identical losses with storage
 * on/off, virtual-clock determinism across thread widths, a golden
 * hash pinning one end-to-end out-of-core epoch, and the shared cache
 * budget helpers both GPU-cache tiers fill through.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/trainer.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "match/feature_cache.h"
#include "sim/storage_link.h"
#include "store/feature_layout.h"
#include "store/io_scheduler.h"
#include "store/prefetcher.h"
#include "store/tiered_store.h"

namespace fastgl {
namespace {

using graph::NodeId;

/** Pinned from a reference run of GoldenOutOfCoreEpochHash; moves only
 *  when the numeric path or the storage model changes behaviour. */
constexpr uint64_t kGoldenOocEpochHash = 0xEC028008A563EDD0ULL;

uint64_t
fnv_bytes(const void *data, size_t bytes)
{
    uint64_t h = 0xCBF29CE484222325ULL;
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ULL;
    }
    return h;
}

graph::Dataset
tiny_reddit()
{
    graph::ReplicaOptions opts;
    opts.size_factor = 0.05;
    opts.materialize_features = true;
    return graph::load_replica(graph::DatasetId::kReddit, opts);
}

// ------------------------------------------------------- StorageLink

TEST(StorageLink, WindowedEstimateMatchesFormula)
{
    for (const sim::StorageSpec &spec :
         {sim::nvme_spec(), sim::sata_ssd_spec()}) {
        sim::StorageLink link(spec);
        const uint64_t block = 16384;
        for (const int64_t blocks : {int64_t(1), int64_t(7),
                                     int64_t(64), int64_t(1000)}) {
            for (const int inflight : {0, 1, 8, 1 << 20}) {
                const int window =
                    inflight <= 0
                        ? spec.queue_depth
                        : std::min(inflight, spec.queue_depth);
                const int64_t rounds = (blocks + window - 1) / window;
                const double want =
                    double(rounds) * spec.read_latency +
                    double(blocks) * double(block) / spec.read_bw;
                EXPECT_DOUBLE_EQ(
                    link.estimate_blocks(blocks, block, inflight), want)
                    << spec.name << " blocks=" << blocks
                    << " inflight=" << inflight;
            }
        }
    }
}

TEST(StorageLink, StatsAccumulateAndZeroBlocksAreFree)
{
    sim::StorageLink link(sim::nvme_spec());
    EXPECT_DOUBLE_EQ(link.read_blocks(0, 4096), 0.0);
    EXPECT_EQ(link.reads(), 0);

    const double a = link.read_blocks(10, 4096);
    const double b = link.read_blocks(5, 4096);
    EXPECT_EQ(link.blocks_read(), 15);
    EXPECT_EQ(link.reads(), 2);
    EXPECT_EQ(link.total_bytes(), uint64_t(15) * 4096);
    EXPECT_DOUBLE_EQ(link.total_time(), a + b);

    link.reset();
    EXPECT_EQ(link.blocks_read(), 0);
    EXPECT_DOUBLE_EQ(link.total_time(), 0.0);
}

TEST(StorageLink, SsdIsSlowerThanNvme)
{
    sim::StorageLink nvme(sim::nvme_spec());
    sim::StorageLink ssd(sim::sata_ssd_spec());
    EXPECT_GT(ssd.estimate_blocks(256, 16384),
              nvme.estimate_blocks(256, 16384));
}

// ------------------------------------------------------- IoScheduler

TEST(OocStoreScheduler, CoalescesDuplicateBlocksInOneSubmission)
{
    sim::StorageLink link(sim::nvme_spec());
    store::IoSchedulerOptions opts;
    store::IoScheduler sched(&link, 100, opts);

    const std::vector<int64_t> blocks = {5, 5, 5, 9, 9, 5};
    const double t = sched.submit(blocks, /*prefetch=*/false);
    EXPECT_GT(t, 0.0);
    EXPECT_EQ(sched.stats().requested_blocks, 6);
    EXPECT_EQ(sched.stats().coalesced_blocks, 4); // four duplicates
    EXPECT_EQ(sched.stats().fetched_blocks, 2);   // blocks 5 and 9
    EXPECT_EQ(link.blocks_read(), 2);
    EXPECT_DOUBLE_EQ(t, link.estimate_blocks(2, opts.block_bytes));

    // The same blocks again: fully staged, nothing hits the drive.
    EXPECT_DOUBLE_EQ(sched.submit(blocks, false), 0.0);
    EXPECT_EQ(sched.stats().staged_hits, 2);
    EXPECT_EQ(link.blocks_read(), 2);
}

TEST(OocStoreScheduler, PrefetchTimeIsOverlappedAndAttributed)
{
    sim::StorageLink link(sim::nvme_spec());
    store::IoScheduler sched(&link, 64, {});

    const std::vector<int64_t> future = {1, 2, 3};
    const double hidden = sched.submit(future, /*prefetch=*/true);
    EXPECT_GT(hidden, 0.0);
    EXPECT_DOUBLE_EQ(sched.stats().prefetch_seconds, hidden);
    EXPECT_DOUBLE_EQ(sched.stats().demand_seconds, 0.0);

    // Demand hits on prefetched blocks stall nothing and are credited
    // to the prefetcher exactly once each.
    EXPECT_DOUBLE_EQ(sched.submit(future, false), 0.0);
    EXPECT_EQ(sched.prefetch_hits(), 3);
    EXPECT_DOUBLE_EQ(sched.submit(future, false), 0.0);
    EXPECT_EQ(sched.prefetch_hits(), 3); // second touch: plain staged
}

TEST(OocStoreScheduler, StagingFifoEvictsOldestFirst)
{
    sim::StorageLink link(sim::nvme_spec());
    store::IoSchedulerOptions opts;
    opts.staging_blocks = 2;
    store::IoScheduler sched(&link, 16, opts);

    sched.submit(std::vector<int64_t>{0}, false);
    sched.submit(std::vector<int64_t>{1}, false);
    EXPECT_TRUE(sched.staged(0));
    EXPECT_TRUE(sched.staged(1));
    sched.submit(std::vector<int64_t>{2}, false); // evicts block 0
    EXPECT_FALSE(sched.staged(0));
    EXPECT_TRUE(sched.staged(1));
    EXPECT_TRUE(sched.staged(2));

    // The evicted block must be fetched again on demand.
    const double t = sched.submit(std::vector<int64_t>{0}, false);
    EXPECT_GT(t, 0.0);
    EXPECT_EQ(link.blocks_read(), 4);
}

TEST(OocStoreScheduler, ResetDropsStagingAndStats)
{
    sim::StorageLink link(sim::nvme_spec());
    store::IoScheduler sched(&link, 8, {});
    sched.submit(std::vector<int64_t>{3, 4}, false);
    sched.reset();
    EXPECT_FALSE(sched.staged(3));
    EXPECT_EQ(sched.stats().requested_blocks, 0);
    EXPECT_EQ(sched.prefetch_hits(), 0);
    EXPECT_GT(sched.submit(std::vector<int64_t>{3}, false), 0.0);
}

// -------------------------------------------------------- Prefetcher

TEST(Prefetch, BlockIssuedAtMostOncePerWindow)
{
    store::LookaheadPrefetcher pf(32);

    const auto first =
        pf.register_batch(0, std::vector<int64_t>{1, 2, 3, 2});
    EXPECT_EQ(first, (std::vector<int64_t>{1, 2, 3}));

    // Overlapping future batch: only the new block issues.
    const auto second =
        pf.register_batch(1, std::vector<int64_t>{2, 3, 4});
    EXPECT_EQ(second, (std::vector<int64_t>{4}));
    EXPECT_EQ(pf.stats().blocks_issued, 4);
    EXPECT_EQ(pf.stats().blocks_suppressed, 2);
    EXPECT_EQ(pf.refcount(2), 2);
    EXPECT_EQ(pf.refcount(4), 1);

    // Block 2 stays referenced until the LAST batch using it retires.
    pf.retire_batch(0);
    EXPECT_EQ(pf.refcount(2), 1);
    EXPECT_TRUE(pf.register_batch(2, std::vector<int64_t>{2}).empty());
    pf.retire_batch(1);
    pf.retire_batch(2);
    EXPECT_EQ(pf.refcount(2), 0);
    EXPECT_EQ(pf.window_size(), 0);

    // Out of the window, the block may be issued again.
    EXPECT_EQ(pf.register_batch(3, std::vector<int64_t>{2}),
              (std::vector<int64_t>{2}));
}

TEST(Prefetch, RetireUnknownBatchIsNoOp)
{
    store::LookaheadPrefetcher pf(8);
    pf.retire_batch(42);
    EXPECT_EQ(pf.window_size(), 0);
    pf.register_batch(7, std::vector<int64_t>{0});
    pf.retire_batch(99);
    EXPECT_EQ(pf.window_size(), 1);
    EXPECT_EQ(pf.refcount(0), 1);
}

// ------------------------------------------------- layout / relayout

TEST(OocStoreLayout, PartitionOrderedLayoutIsBijection)
{
    const graph::CsrGraph g = graph::generate_ring(200, 3, 0xBEEF);
    const graph::Partitioning parts = graph::partition_bfs(g, 4);
    const store::FeatureLayout layout =
        store::partition_ordered_layout(g, parts);

    ASSERT_EQ(layout.num_nodes(), g.num_nodes());
    std::vector<int> slot_seen(size_t(g.num_nodes()), 0);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        const NodeId s = layout.slot_of[size_t(u)];
        ASSERT_GE(s, 0);
        ASSERT_LT(s, g.num_nodes());
        ++slot_seen[size_t(s)];
        EXPECT_EQ(layout.node_at[size_t(s)], u);
    }
    for (NodeId s = 0; s < g.num_nodes(); ++s)
        EXPECT_EQ(slot_seen[size_t(s)], 1);

    // Partition-major: each partition's members occupy one contiguous
    // slot range, in partition order.
    NodeId next_slot = 0;
    for (int p = 0; p < parts.num_parts(); ++p) {
        for (size_t i = 0; i < parts.members[size_t(p)].size(); ++i) {
            const NodeId u = layout.node_at[size_t(next_slot++)];
            EXPECT_EQ(parts.part_of[size_t(u)], p);
        }
    }
}

TEST(OocStoreLayout, RelayoutRoundTripsBitIdentical)
{
    const graph::CsrGraph g = graph::generate_ring(120, 2, 0xC0DE);
    const graph::Partitioning parts = graph::partition_bfs(g, 3);
    const store::FeatureLayout layout =
        store::partition_ordered_layout(g, parts);
    graph::FeatureStore features(g.num_nodes(), 17, 4, 0xFACE, true);

    const std::vector<float> relaid =
        store::relayout_features(features, layout);
    ASSERT_EQ(relaid.size(),
              size_t(g.num_nodes()) * size_t(features.dim()));

    // Reading node u's row from slot slot_of[u] must be byte-for-byte
    // the original row: the relayout is a pure relabelling.
    std::vector<float> row(size_t(features.dim()));
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        features.gather_row(u, row.data());
        const float *got =
            relaid.data() +
            size_t(layout.slot_of[size_t(u)]) * size_t(features.dim());
        EXPECT_EQ(std::memcmp(got, row.data(),
                              row.size() * sizeof(float)),
                  0)
            << "node " << u;
    }

    // And the whole matrix is a permutation of the original rows.
    uint64_t want = 0, got = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        features.gather_row(u, row.data());
        want ^= fnv_bytes(row.data(), row.size() * sizeof(float));
        got ^= fnv_bytes(relaid.data() +
                             size_t(u) * size_t(features.dim()),
                         row.size() * sizeof(float));
    }
    EXPECT_EQ(got, want);
}

TEST(OocStoreLayout, IdentityLayoutIsIdentity)
{
    const store::FeatureLayout layout = store::identity_layout(9);
    for (NodeId u = 0; u < 9; ++u) {
        EXPECT_EQ(layout.slot_of[size_t(u)], u);
        EXPECT_EQ(layout.node_at[size_t(u)], u);
    }
}

// ------------------------------------------------ TieredFeatureStore

TEST(OocStore, ChargeClassifiesRowsAcrossTiers)
{
    const graph::CsrGraph g = graph::generate_ring(64, 2, 7);
    graph::FeatureStore features(g.num_nodes(), 8, 4, 1, false);
    std::vector<NodeId> ranking(size_t(g.num_nodes()));
    for (NodeId u = 0; u < g.num_nodes(); ++u)
        ranking[size_t(u)] = u; // hotness = ascending node ID
    // The GPU cache holds nodes 40 and 2 — 40 deliberately outside the
    // host-DRAM prefix, so the cache skip is distinguishable from host
    // residency.
    const match::StaticFeatureCache gpu(g.num_nodes(), {40, 2}, 2);

    store::TieredStoreOptions opts;
    opts.storage = store::StorageKind::kNvme;
    opts.host_mem_rows = 16;
    opts.prefetch_depth = 0;
    store::TieredFeatureStore ts(features, g, ranking, nullptr, &gpu,
                                 opts);
    ASSERT_TRUE(ts.active());
    EXPECT_EQ(ts.host_rows(), 16);
    EXPECT_TRUE(ts.host_resident(15));
    EXPECT_FALSE(ts.host_resident(16));

    // 2/40/40 hit the GPU cache, 5/15 host DRAM, 16/33 storage.
    const std::vector<NodeId> batch = {2, 5, 15, 16, 40, 40, 33};
    const double stall = ts.charge_batch(batch);
    EXPECT_GT(stall, 0.0);
    const store::StoreStats s = ts.stats();
    EXPECT_EQ(s.lookup_rows, 7);
    EXPECT_EQ(s.gpu_cache_rows, 3);
    EXPECT_EQ(s.host_rows, 2);
    EXPECT_EQ(s.storage_rows, 2);
    EXPECT_DOUBLE_EQ(s.stall_seconds, stall);

    // charge_miss_rows skips the GPU-cache check: cached node 40 pays
    // storage (it is not host-resident either).
    ts.begin_run();
    ts.charge_miss_rows(std::vector<NodeId>{40});
    EXPECT_EQ(ts.stats().storage_rows, 1);
    EXPECT_EQ(ts.stats().gpu_cache_rows, 0);
}

TEST(OocStore, InactiveWhenEverythingFitsInHostMemory)
{
    const graph::CsrGraph g = graph::generate_ring(32, 2, 7);
    graph::FeatureStore features(g.num_nodes(), 8, 4, 1, false);
    std::vector<NodeId> ranking(size_t(g.num_nodes()));
    for (NodeId u = 0; u < g.num_nodes(); ++u)
        ranking[size_t(u)] = u;

    store::TieredStoreOptions opts;
    opts.storage = store::StorageKind::kNvme;
    opts.host_mem_fraction = 1.0;
    store::TieredFeatureStore ts(features, g, ranking, nullptr, nullptr,
                                 opts);
    EXPECT_FALSE(ts.active());
    EXPECT_DOUBLE_EQ(ts.charge_batch(std::vector<NodeId>{1, 2}), 0.0);
    EXPECT_EQ(ts.stats().lookup_rows, 0);
}

// ------------------------------------------- end-to-end bit identity

core::TrainerOptions
ooc_trainer_opts()
{
    core::TrainerOptions opts;
    opts.fanouts = {4, 4};
    opts.max_batches = 6;
    opts.batch_size = 32;
    return opts;
}

TEST(OocStore, TrainerLossesBitIdenticalWithStorageOnOff)
{
    const graph::Dataset ds = tiny_reddit();

    core::TrainerOptions base = ooc_trainer_opts();
    core::Trainer vanilla(ds, base);
    const auto want = vanilla.train_epoch();

    core::TrainerOptions ooc = ooc_trainer_opts();
    ooc.storage.storage = store::StorageKind::kNvme;
    ooc.storage.host_mem_fraction = 0.25;
    ooc.storage.relayout = true;
    core::Trainer trainer(ds, ooc);
    ASSERT_NE(trainer.tiered_store(), nullptr);
    ASSERT_TRUE(trainer.tiered_store()->active());
    const auto got = trainer.train_epoch();

    // Storage is accounting only: the loss curve is bit-identical.
    ASSERT_EQ(got.iteration_losses.size(), want.iteration_losses.size());
    for (size_t i = 0; i < want.iteration_losses.size(); ++i)
        EXPECT_EQ(got.iteration_losses[i], want.iteration_losses[i]);
    EXPECT_EQ(got.mean_accuracy, want.mean_accuracy);

    // ... but the store did classify rows and charge the drive.
    EXPECT_GT(got.store.storage_rows, 0);
    EXPECT_GT(got.store.demand_blocks, 0);
    EXPECT_GT(got.storage_hidden_seconds, 0.0);
    EXPECT_DOUBLE_EQ(got.modelled_epoch_seconds,
                     got.modelled_compute_seconds +
                         got.storage_stall_seconds);
    // Fully-in-memory runs reproduce the in-memory epoch time exactly.
    EXPECT_DOUBLE_EQ(want.modelled_epoch_seconds,
                     want.modelled_compute_seconds);
}

TEST(OocStore, VirtualClockDeterministicAcrossThreadWidths)
{
    const graph::Dataset ds = tiny_reddit();
    store::StoreStats first;
    double first_stall = -1.0, first_hidden = -1.0;
    for (const int threads : {1, 4, 8}) {
        core::TrainerOptions opts = ooc_trainer_opts();
        opts.compute_threads = threads;
        opts.gather_threads = threads;
        opts.storage.storage = store::StorageKind::kNvme;
        opts.storage.host_mem_fraction = 0.25;
        core::Trainer trainer(ds, opts);
        const auto stats = trainer.train_epoch();
        if (first_stall < 0.0) {
            first = stats.store;
            first_stall = stats.storage_stall_seconds;
            first_hidden = stats.storage_hidden_seconds;
            continue;
        }
        EXPECT_EQ(stats.store.lookup_rows, first.lookup_rows);
        EXPECT_EQ(stats.store.storage_rows, first.storage_rows);
        EXPECT_EQ(stats.store.demand_blocks, first.demand_blocks);
        EXPECT_EQ(stats.store.demand_staged, first.demand_staged);
        EXPECT_EQ(stats.store.prefetch_hits, first.prefetch_hits);
        EXPECT_EQ(stats.storage_stall_seconds, first_stall)
            << "threads=" << threads;
        EXPECT_EQ(stats.storage_hidden_seconds, first_hidden)
            << "threads=" << threads;
    }
}

TEST(OocStore, GoldenOutOfCoreEpochHash)
{
    const graph::Dataset ds = tiny_reddit();
    core::TrainerOptions opts = ooc_trainer_opts();
    opts.storage.storage = store::StorageKind::kNvme;
    opts.storage.host_mem_fraction = 0.25;
    opts.storage.relayout = true;
    core::Trainer trainer(ds, opts);
    const auto stats = trainer.train_epoch();

    // One FNV hash over the loss curve and every storage counter and
    // virtual-clock charge: moves only when the numeric path or the
    // storage model changes behaviour.
    uint64_t h = fnv_bytes(stats.iteration_losses.data(),
                           stats.iteration_losses.size() *
                               sizeof(double));
    const int64_t counters[] = {
        stats.store.lookup_rows,   stats.store.gpu_cache_rows,
        stats.store.host_rows,     stats.store.storage_rows,
        stats.store.demand_blocks, stats.store.demand_staged,
        stats.store.demand_fetched, stats.store.prefetch_hits,
    };
    h ^= fnv_bytes(counters, sizeof(counters));
    const double seconds[] = {stats.storage_stall_seconds,
                              stats.storage_hidden_seconds};
    h ^= fnv_bytes(seconds, sizeof(seconds));
    EXPECT_EQ(h, kGoldenOocEpochHash);
}

// -------------------------------------------- shared budget helpers

TEST(OocStoreBudget, FillBudgetClampsToRankingAndZero)
{
    EXPECT_EQ(match::cache_fill_budget(10, 100), 10);
    EXPECT_EQ(match::cache_fill_budget(100, 10), 10);
    EXPECT_EQ(match::cache_fill_budget(0, 10), 0);
    EXPECT_EQ(match::cache_fill_budget(-5, 10), 0);
    EXPECT_EQ(match::cache_fill_budget(10, 0), 0);
}

TEST(OocStoreBudget, InvariantPanicsOnOverfill)
{
    match::check_cache_budget(0, 0, "test");   // fine
    match::check_cache_budget(5, 5, "test");   // at capacity: fine
    EXPECT_DEATH(match::check_cache_budget(6, 5, "test"), "test");
    EXPECT_DEATH(match::check_cache_budget(-1, 5, "test"), "test");
}

TEST(OocStoreBudget, StaticCacheExposesResidencyAccessors)
{
    // A ranking with duplicates: each ranking position consumes fill
    // budget, but a row only counts resident once.
    const std::vector<NodeId> ranking = {3, 3, 1, 1, 2};
    const match::StaticFeatureCache cache(8, ranking, 4);
    EXPECT_EQ(cache.capacity_rows(), 4);
    EXPECT_EQ(cache.resident_rows(), 2); // first four entries: {3, 1}
    EXPECT_LE(cache.resident_rows(), cache.capacity_rows());
    EXPECT_EQ(cache.resident_bytes(128), uint64_t(2) * 128);
}

TEST(OocStoreBudget, PartitionedCacheExposesResidencyAccessors)
{
    const graph::Dataset ds = tiny_reddit();
    core::TrainerOptions opts = ooc_trainer_opts();
    opts.num_gpus = 2;
    opts.feature_cache_ratio = 0.1;
    core::Trainer trainer(ds, opts);
    const match::PartitionedFeatureCache *cache =
        trainer.sharded_feature_cache();
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->capacity_rows(), cache->capacity_rows_per_device());
    for (int d = 0; d < cache->num_devices(); ++d) {
        EXPECT_LE(cache->resident_rows(d), cache->capacity_rows());
        EXPECT_EQ(cache->resident_bytes(d, 64),
                  uint64_t(cache->resident_rows(d)) * 64);
    }
}

} // namespace
} // namespace fastgl
