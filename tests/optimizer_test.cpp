/**
 * @file
 * Tests for the SGD and Adam optimizers on analytic objectives.
 */
#include <gtest/gtest.h>

#include "compute/optimizer.h"

namespace fastgl {
namespace {

using compute::Parameter;
using compute::Tensor;

/** grad of f(x) = 0.5 * ||x - target||^2. */
void
quadratic_grad(Parameter &p, float target)
{
    for (int64_t i = 0; i < p.numel(); ++i)
        p.grad.data()[i] = p.value.data()[i] - target;
}

TEST(Sgd, PlainStepMovesAgainstGradient)
{
    Parameter p(Tensor(1, 1));
    p.value.at(0, 0) = 4.0f;
    compute::Sgd sgd(0.5f);
    quadratic_grad(p, 0.0f);
    sgd.step({&p});
    EXPECT_FLOAT_EQ(p.value.at(0, 0), 2.0f);
}

TEST(Sgd, ConvergesOnQuadratic)
{
    Parameter p(Tensor(2, 2));
    p.value.fill(10.0f);
    compute::Sgd sgd(0.2f);
    for (int i = 0; i < 100; ++i) {
        quadratic_grad(p, 3.0f);
        sgd.step({&p});
    }
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_NEAR(p.value.data()[i], 3.0f, 1e-4);
}

TEST(Sgd, MomentumAcceleratesDescent)
{
    auto run = [](float momentum) {
        Parameter p(Tensor(1, 1));
        p.value.at(0, 0) = 10.0f;
        compute::Sgd sgd(0.01f, momentum);
        for (int i = 0; i < 40; ++i) {
            quadratic_grad(p, 0.0f);
            sgd.step({&p});
        }
        return std::abs(p.value.at(0, 0));
    };
    EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(Sgd, WeightDecayShrinksWeightsAtMinimum)
{
    Parameter p(Tensor(1, 1));
    p.value.at(0, 0) = 1.0f;
    compute::Sgd sgd(0.1f, 0.0f, 0.5f);
    p.zero_grad(); // gradient zero: only decay acts
    sgd.step({&p});
    EXPECT_LT(p.value.at(0, 0), 1.0f);
}

TEST(Adam, ConvergesOnQuadratic)
{
    Parameter p(Tensor(3, 1));
    p.value.fill(-5.0f);
    compute::Adam adam(0.3f);
    for (int i = 0; i < 300; ++i) {
        quadratic_grad(p, 2.0f);
        adam.step({&p});
    }
    for (int64_t i = 0; i < 3; ++i)
        EXPECT_NEAR(p.value.data()[i], 2.0f, 1e-2);
}

TEST(Adam, FirstStepIsBiasCorrectedLearningRate)
{
    // With bias correction, the first Adam step is ~lr * sign(grad).
    Parameter p(Tensor(1, 1));
    p.value.at(0, 0) = 1.0f;
    p.grad.at(0, 0) = 1e-3f;
    compute::Adam adam(0.1f);
    adam.step({&p});
    EXPECT_NEAR(p.value.at(0, 0), 0.9f, 1e-3);
}

TEST(Adam, HandlesMultipleParameters)
{
    Parameter a(Tensor(2, 2)), b(Tensor(1, 4));
    a.value.fill(1.0f);
    b.value.fill(-1.0f);
    compute::Adam adam(0.05f);
    for (int i = 0; i < 200; ++i) {
        quadratic_grad(a, 0.0f);
        quadratic_grad(b, 0.0f);
        adam.step({&a, &b});
    }
    EXPECT_NEAR(a.value.at(0, 0), 0.0f, 1e-2);
    EXPECT_NEAR(b.value.at(0, 3), 0.0f, 1e-2);
}

TEST(Parameter, ZeroGradClears)
{
    Parameter p(Tensor(2, 2));
    p.grad.fill(3.0f);
    p.zero_grad();
    EXPECT_DOUBLE_EQ(p.grad.sum_squares(), 0.0);
}

} // namespace
} // namespace fastgl
