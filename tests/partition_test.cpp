/**
 * @file
 * Tests for the graph partitioners (ClusterGCN / multi-machine substrate).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/partition.h"

namespace fastgl {
namespace {

graph::CsrGraph
test_graph(int nodes = 4000)
{
    graph::RmatParams params;
    params.num_nodes = nodes;
    params.num_edges = nodes * 8;
    params.seed = 19;
    return graph::generate_rmat(params);
}

void
check_valid_partition(const graph::Partitioning &parts,
                      const graph::CsrGraph &g, int k)
{
    ASSERT_EQ(parts.num_parts(), k);
    ASSERT_EQ(parts.part_of.size(), size_t(g.num_nodes()));
    // Every node assigned exactly once.
    std::vector<bool> seen(size_t(g.num_nodes()), false);
    for (int p = 0; p < k; ++p) {
        for (graph::NodeId u : parts.members[size_t(p)]) {
            ASSERT_GE(u, 0);
            ASSERT_LT(u, g.num_nodes());
            ASSERT_FALSE(seen[size_t(u)]) << "node " << u << " twice";
            seen[size_t(u)] = true;
            ASSERT_EQ(parts.part_of[size_t(u)], p);
        }
    }
    for (bool b : seen)
        ASSERT_TRUE(b);
}

class PartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(PartitionProperty, BfsCoversAllNodesOnce)
{
    graph::CsrGraph g = test_graph();
    const auto parts = graph::partition_bfs(g, GetParam());
    check_valid_partition(parts, g, GetParam());
}

TEST_P(PartitionProperty, LdgCoversAllNodesOnce)
{
    graph::CsrGraph g = test_graph();
    const auto parts = graph::partition_ldg(g, GetParam());
    check_valid_partition(parts, g, GetParam());
}

TEST_P(PartitionProperty, LdgIsReasonablyBalanced)
{
    graph::CsrGraph g = test_graph();
    const auto parts = graph::partition_ldg(g, GetParam());
    EXPECT_LT(parts.balance(g), 1.25);
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionProperty,
                         ::testing::Values(2, 4, 16, 32));

TEST(Partition, SinglePartHasNoCut)
{
    graph::CsrGraph g = test_graph(500);
    const auto parts = graph::partition_ldg(g, 1);
    EXPECT_EQ(parts.count_cut_edges(g), 0);
    EXPECT_NEAR(parts.balance(g), 1.0, 1e-9);
}

TEST(Partition, LdgCutBeatsRandomAssignment)
{
    // LDG must beat the expected random cut fraction (1 - 1/k).
    graph::CsrGraph g = test_graph();
    const int k = 8;
    const auto parts = graph::partition_ldg(g, k);
    const double cut_fraction =
        double(parts.count_cut_edges(g)) / double(g.num_edges());
    EXPECT_LT(cut_fraction, 1.0 - 1.0 / double(k));
}

TEST(Partition, CutEdgesSymmetricOnUndirectedGraph)
{
    graph::CsrGraph g = test_graph(1000);
    const auto parts = graph::partition_bfs(g, 4);
    // The generator mirrors every edge, so the cut count is even.
    EXPECT_EQ(parts.count_cut_edges(g) % 2, 0);
}

TEST(Partition, Deterministic)
{
    graph::CsrGraph g = test_graph(2000);
    const auto a = graph::partition_ldg(g, 8);
    const auto b = graph::partition_ldg(g, 8);
    EXPECT_EQ(a.part_of, b.part_of);
}

// ---- Edge-case hardening: the partitioners must stay deterministic
// ---- and crash-free on degenerate inputs (k > n, k == 1,
// ---- disconnected graphs, the empty graph).

TEST(PartitionEdgeCases, MorePartsThanNodes)
{
    graph::CsrGraph g = test_graph(10);
    for (auto *fn : {graph::partition_bfs, graph::partition_ldg}) {
        const auto parts = fn(g, 32);
        check_valid_partition(parts, g, 32);
        // Surplus partitions stay empty rather than crashing.
        size_t empty = 0;
        for (const auto &members : parts.members)
            empty += members.empty() ? 1 : 0;
        EXPECT_GE(empty, size_t(32 - 10));
    }
}

TEST(PartitionEdgeCases, SinglePartition)
{
    graph::CsrGraph g = test_graph(300);
    for (auto *fn : {graph::partition_bfs, graph::partition_ldg}) {
        const auto parts = fn(g, 1);
        check_valid_partition(parts, g, 1);
        EXPECT_EQ(parts.count_cut_edges(g), 0);
    }
}

TEST(PartitionEdgeCases, DisconnectedComponentsAllAssigned)
{
    // Three 4-cliques with no edges between them, plus two fully
    // isolated nodes: BFS must restart across components.
    graph::GraphBuilder builder(14);
    for (int c = 0; c < 3; ++c) {
        const int base = c * 4;
        for (int i = 0; i < 4; ++i)
            for (int j = i + 1; j < 4; ++j)
                builder.add_undirected_edge(base + i, base + j);
    }
    graph::CsrGraph g = builder.build();
    for (auto *fn : {graph::partition_bfs, graph::partition_ldg}) {
        const auto parts = fn(g, 3);
        check_valid_partition(parts, g, 3);
    }
    // BFS restarts from the lowest unassigned node, so on this
    // ID-ordered component layout the partition labels are
    // non-decreasing in node ID (a partition may top itself up with
    // the next component's first nodes, but never jumps back).
    const auto parts = graph::partition_bfs(g, 3);
    for (graph::NodeId u = 1; u < g.num_nodes(); ++u)
        EXPECT_GE(parts.part_of[size_t(u)],
                  parts.part_of[size_t(u - 1)]);
}

TEST(PartitionEdgeCases, EmptyGraph)
{
    graph::GraphBuilder builder(0);
    graph::CsrGraph g = builder.build();
    for (auto *fn : {graph::partition_bfs, graph::partition_ldg}) {
        const auto parts = fn(g, 4);
        EXPECT_EQ(parts.num_parts(), 4);
        EXPECT_TRUE(parts.part_of.empty());
        for (const auto &members : parts.members)
            EXPECT_TRUE(members.empty());
    }
}

TEST(PartitionEdgeCases, DispatchAndNames)
{
    graph::CsrGraph g = test_graph(200);
    EXPECT_STREQ(graph::partitioner_name(graph::PartitionerKind::kBfs),
                 "bfs");
    EXPECT_STREQ(graph::partitioner_name(graph::PartitionerKind::kLdg),
                 "ldg");
    EXPECT_EQ(graph::partition_graph(g, 4,
                                     graph::PartitionerKind::kBfs)
                  .part_of,
              graph::partition_bfs(g, 4).part_of);
    EXPECT_EQ(graph::partition_graph(g, 4,
                                     graph::PartitionerKind::kLdg)
                  .part_of,
              graph::partition_ldg(g, 4).part_of);
}

// ---- Text serialization (the same compute-once-reuse-everywhere
// ---- shape as match::WarmupTrace).

TEST(PartitionSerialize, RoundTrip)
{
    graph::CsrGraph g = test_graph(1500);
    const auto parts = graph::partition_ldg(g, 6);
    const std::string path =
        ::testing::TempDir() + "partition_roundtrip.txt";
    ASSERT_TRUE(graph::save_partitioning(path, parts));
    const auto loaded = graph::load_partitioning(path);
    EXPECT_EQ(loaded.part_of, parts.part_of);
    EXPECT_EQ(loaded.members, parts.members);
    check_valid_partition(loaded, g, 6);
    std::remove(path.c_str());
}

TEST(PartitionSerialize, MissingFileIsEmpty)
{
    const auto loaded =
        graph::load_partitioning("/nonexistent/partition.txt");
    EXPECT_TRUE(loaded.empty());
    EXPECT_TRUE(loaded.part_of.empty());
}

TEST(PartitionSerialize, RejectsWrongMagicAndBadIndices)
{
    const std::string bad_magic =
        ::testing::TempDir() + "partition_bad_magic.txt";
    {
        std::ofstream out(bad_magic);
        out << "not-a-partition 2 2\n0\n1\n";
    }
    EXPECT_TRUE(graph::load_partitioning(bad_magic).empty());
    std::remove(bad_magic.c_str());

    const std::string bad_index =
        ::testing::TempDir() + "partition_bad_index.txt";
    {
        std::ofstream out(bad_index);
        out << "fastgl-partition-v1 2 2\n0\n7\n";
    }
    EXPECT_TRUE(graph::load_partitioning(bad_index).empty());
    std::remove(bad_index.c_str());
}

} // namespace
} // namespace fastgl
