/**
 * @file
 * Tests for the graph partitioners (ClusterGCN / multi-machine substrate).
 */
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "graph/partition.h"

namespace fastgl {
namespace {

graph::CsrGraph
test_graph(int nodes = 4000)
{
    graph::RmatParams params;
    params.num_nodes = nodes;
    params.num_edges = nodes * 8;
    params.seed = 19;
    return graph::generate_rmat(params);
}

void
check_valid_partition(const graph::Partitioning &parts,
                      const graph::CsrGraph &g, int k)
{
    ASSERT_EQ(parts.num_parts(), k);
    ASSERT_EQ(parts.part_of.size(), size_t(g.num_nodes()));
    // Every node assigned exactly once.
    std::vector<bool> seen(size_t(g.num_nodes()), false);
    for (int p = 0; p < k; ++p) {
        for (graph::NodeId u : parts.members[size_t(p)]) {
            ASSERT_GE(u, 0);
            ASSERT_LT(u, g.num_nodes());
            ASSERT_FALSE(seen[size_t(u)]) << "node " << u << " twice";
            seen[size_t(u)] = true;
            ASSERT_EQ(parts.part_of[size_t(u)], p);
        }
    }
    for (bool b : seen)
        ASSERT_TRUE(b);
}

class PartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(PartitionProperty, BfsCoversAllNodesOnce)
{
    graph::CsrGraph g = test_graph();
    const auto parts = graph::partition_bfs(g, GetParam());
    check_valid_partition(parts, g, GetParam());
}

TEST_P(PartitionProperty, LdgCoversAllNodesOnce)
{
    graph::CsrGraph g = test_graph();
    const auto parts = graph::partition_ldg(g, GetParam());
    check_valid_partition(parts, g, GetParam());
}

TEST_P(PartitionProperty, LdgIsReasonablyBalanced)
{
    graph::CsrGraph g = test_graph();
    const auto parts = graph::partition_ldg(g, GetParam());
    EXPECT_LT(parts.balance(g), 1.25);
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionProperty,
                         ::testing::Values(2, 4, 16, 32));

TEST(Partition, SinglePartHasNoCut)
{
    graph::CsrGraph g = test_graph(500);
    const auto parts = graph::partition_ldg(g, 1);
    EXPECT_EQ(parts.count_cut_edges(g), 0);
    EXPECT_NEAR(parts.balance(g), 1.0, 1e-9);
}

TEST(Partition, LdgCutBeatsRandomAssignment)
{
    // LDG must beat the expected random cut fraction (1 - 1/k).
    graph::CsrGraph g = test_graph();
    const int k = 8;
    const auto parts = graph::partition_ldg(g, k);
    const double cut_fraction =
        double(parts.count_cut_edges(g)) / double(g.num_edges());
    EXPECT_LT(cut_fraction, 1.0 - 1.0 / double(k));
}

TEST(Partition, CutEdgesSymmetricOnUndirectedGraph)
{
    graph::CsrGraph g = test_graph(1000);
    const auto parts = graph::partition_bfs(g, 4);
    // The generator mirrors every edge, so the cut count is even.
    EXPECT_EQ(parts.count_cut_edges(g) % 2, 0);
}

TEST(Partition, Deterministic)
{
    graph::CsrGraph g = test_graph(2000);
    const auto a = graph::partition_ldg(g, 8);
    const auto b = graph::partition_ldg(g, 8);
    EXPECT_EQ(a.part_of, b.part_of);
}

} // namespace
} // namespace fastgl
