/**
 * @file
 * Tests for the epoch pipeline: framework presets, phase accounting,
 * and the paper's qualitative orderings (FastGL loads fewer bytes than
 * DGL, fused ID map beats sync, GNNLab hides sampling, etc.).
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "core/framework_config.h"
#include "core/pipeline.h"
#include "graph/datasets.h"
#include "graph/serialize.h"

namespace fastgl {
namespace {

const graph::Dataset &
products()
{
    static graph::Dataset ds = [] {
        graph::ReplicaOptions opts;
        opts.size_factor = 0.15;
        opts.materialize_features = false;
        return graph::load_replica(graph::DatasetId::kProducts, opts);
    }();
    return ds;
}

core::PipelineOptions
base_options(core::Framework fw)
{
    core::PipelineOptions opts;
    opts.fw = core::framework_preset(fw);
    opts.num_gpus = 2;
    opts.max_batches = 8;
    opts.seed = 99;
    return opts;
}

TEST(FrameworkConfig, PresetsMatchTable5)
{
    const auto pyg = core::framework_preset(core::Framework::kPyG);
    EXPECT_EQ(pyg.sample_device, core::SampleDevice::kCpu);
    EXPECT_EQ(pyg.io, core::IoStrategy::kFullLoad);

    const auto dgl = core::framework_preset(core::Framework::kDgl);
    EXPECT_EQ(dgl.sample_device, core::SampleDevice::kGpu);
    EXPECT_EQ(dgl.id_map, core::IdMapEngine::kGpuSync);

    const auto lab = core::framework_preset(core::Framework::kGnnLab);
    EXPECT_EQ(lab.io, core::IoStrategy::kStaticCache);
    EXPECT_TRUE(lab.pipelined_sampling);

    const auto fast = core::framework_preset(core::Framework::kFastGL);
    EXPECT_EQ(fast.id_map, core::IdMapEngine::kGpuFused);
    EXPECT_EQ(fast.io, core::IoStrategy::kMatchReorder);
    EXPECT_EQ(fast.compute_plan, compute::ComputePlan::kMemoryAware);

    EXPECT_EQ(core::framework_name(core::Framework::kGnnAdvisor),
              "GNNAdvisor");
}

TEST(Pipeline, EpochProducesConsistentAccounting)
{
    core::Pipeline pipe(products(), base_options(core::Framework::kDgl));
    const auto result = pipe.run_epoch();
    EXPECT_EQ(result.batches, 8);
    EXPECT_GT(result.epoch_seconds, 0.0);
    EXPECT_GT(result.phases.sample, 0.0);
    EXPECT_GT(result.phases.id_map, 0.0);
    EXPECT_GT(result.phases.io, 0.0);
    EXPECT_GT(result.phases.compute, 0.0);
    EXPECT_GT(result.phases.allreduce, 0.0); // 2 GPUs
    EXPECT_GT(result.nodes_loaded, 0);
    EXPECT_GT(result.bytes_loaded, 0u);
    EXPECT_GT(result.sampled_instances, result.unique_nodes);
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    core::Pipeline a(products(), base_options(core::Framework::kFastGL));
    core::Pipeline b(products(), base_options(core::Framework::kFastGL));
    const auto ra = a.run_epoch();
    const auto rb = b.run_epoch();
    EXPECT_DOUBLE_EQ(ra.epoch_seconds, rb.epoch_seconds);
    EXPECT_EQ(ra.nodes_loaded, rb.nodes_loaded);
}

TEST(Pipeline, MatchReducesLoadsVersusFullLoad)
{
    // The Match process must strictly reduce PCIe feature traffic
    // relative to DGL's full loads (paper Section 4.1).
    core::Pipeline dgl(products(), base_options(core::Framework::kDgl));
    auto fast_opts = base_options(core::Framework::kFastGL);
    fast_opts.fw.cache_on_top_of_match = false; // isolate Match
    core::Pipeline fast(products(), fast_opts);

    const auto rd = dgl.run_epoch();
    const auto rf = fast.run_epoch();
    EXPECT_LT(rf.nodes_loaded, rd.nodes_loaded);
    EXPECT_GT(rf.nodes_reused, 0);
    EXPECT_GT(rf.reuse_fraction(), 0.1);
    EXPECT_LT(rf.phases.io, rd.phases.io);
}

TEST(Pipeline, FusedIdMapFasterThanSync)
{
    core::Pipeline dgl(products(), base_options(core::Framework::kDgl));
    core::Pipeline fast(products(),
                        base_options(core::Framework::kFastGL));
    const auto rd = dgl.run_epoch();
    const auto rf = fast.run_epoch();
    EXPECT_LT(rf.phases.id_map, rd.phases.id_map);
    const double ratio = rd.phases.id_map / rf.phases.id_map;
    // Paper Table 8: 2.1x - 2.7x.
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 3.5);
}

TEST(Pipeline, PygSamplingDominatesItsEpoch)
{
    core::Pipeline pyg(products(), base_options(core::Framework::kPyG));
    const auto result = pyg.run_epoch();
    // Paper: PyG spends up to 97% of time sampling on CPU.
    EXPECT_GT(result.phases.sample_total() / result.phases.total(),
              0.5);
}

TEST(Pipeline, FastGlBeatsDglEndToEnd)
{
    core::Pipeline dgl(products(), base_options(core::Framework::kDgl));
    core::Pipeline fast(products(),
                        base_options(core::Framework::kFastGL));
    const double td = dgl.run_epoch().epoch_seconds;
    const double tf = fast.run_epoch().epoch_seconds;
    EXPECT_LT(tf, td);
    // Paper Fig. 9: 1.7x-5.1x over DGL.
    EXPECT_GT(td / tf, 1.2);
    EXPECT_LT(td / tf, 8.0);
}

TEST(Pipeline, GnnLabDedicatesSamplerGpus)
{
    auto opts = base_options(core::Framework::kGnnLab);
    opts.num_gpus = 2;
    core::Pipeline two(products(), opts);
    EXPECT_EQ(two.sampler_gpus(), 1);
    EXPECT_EQ(two.trainer_gpus(), 1);

    opts.num_gpus = 8;
    core::Pipeline eight(products(), opts);
    EXPECT_EQ(eight.sampler_gpus(), 2);
    EXPECT_EQ(eight.trainer_gpus(), 6);
}

TEST(Pipeline, GnnLabWallClockHidesSampling)
{
    auto opts = base_options(core::Framework::kGnnLab);
    core::Pipeline lab(products(), opts);
    const auto result = lab.run_epoch();
    // Wall clock must be below the serial sum of phases (overlap).
    EXPECT_LT(result.epoch_seconds, result.phases.total());
}

TEST(Pipeline, MoreGpusReduceEpochTime)
{
    auto opts1 = base_options(core::Framework::kFastGL);
    opts1.num_gpus = 1;
    opts1.max_batches = 12;
    auto opts4 = opts1;
    opts4.num_gpus = 4;
    core::Pipeline one(products(), opts1);
    core::Pipeline four(products(), opts4);
    EXPECT_GT(one.run_epoch().epoch_seconds,
              four.run_epoch().epoch_seconds);
}

TEST(Pipeline, ExplicitCacheRatioControlsCacheSize)
{
    auto opts = base_options(core::Framework::kGnnLab);
    opts.cache_ratio = 0.5;
    core::Pipeline pipe(products(), opts);
    EXPECT_NEAR(double(pipe.cache_capacity_rows()),
                0.5 * double(products().graph.num_nodes()), 1.0);

    opts.cache_ratio = 0.0;
    core::Pipeline none(products(), opts);
    EXPECT_EQ(none.cache_capacity_rows(), 0);
}

TEST(Pipeline, LargerCacheLoadsFewerNodes)
{
    auto small = base_options(core::Framework::kGnnLab);
    small.cache_ratio = 0.05;
    auto large = base_options(core::Framework::kGnnLab);
    large.cache_ratio = 0.6;
    core::Pipeline ps(products(), small);
    core::Pipeline pl(products(), large);
    EXPECT_GT(ps.run_epoch().nodes_loaded,
              pl.run_epoch().nodes_loaded);
}

TEST(Pipeline, RandomWalkModeRuns)
{
    auto opts = base_options(core::Framework::kFastGL);
    opts.use_random_walk = true;
    core::Pipeline pipe(products(), opts);
    const auto result = pipe.run_epoch();
    EXPECT_GT(result.epoch_seconds, 0.0);
    EXPECT_GT(result.nodes_reused, 0);
}

TEST(Pipeline, MultiMachineSplitsWorkAndPaysNetwork)
{
    auto opts = base_options(core::Framework::kFastGL);
    opts.max_batches = 16;
    core::Pipeline one(products(), opts);
    opts.num_machines = 4;
    core::Pipeline four(products(), opts);
    EXPECT_EQ(four.total_trainers(), 4 * four.trainer_gpus());

    const auto r1 = one.run_epoch();
    const auto r4 = four.run_epoch();
    // More machines -> shorter epoch...
    EXPECT_LT(r4.epoch_seconds, r1.epoch_seconds);
    // ...but not linearly (network allreduce tax).
    EXPECT_GT(r4.epoch_seconds, r1.epoch_seconds / 4.0);
}

TEST(Pipeline, SlowNetworkErodesMultiMachineGains)
{
    auto opts = base_options(core::Framework::kFastGL);
    opts.max_batches = 16;
    opts.num_machines = 4;
    core::Pipeline fast_net(products(), opts);
    opts.network_bw = 0.125e9; // 1 Gb/s
    core::Pipeline slow_net(products(), opts);
    EXPECT_GT(slow_net.run_epoch().epoch_seconds,
              fast_net.run_epoch().epoch_seconds);
}

TEST(Pipeline, ExportsStageTimesForTimelineValidation)
{
    auto opts = base_options(core::Framework::kDgl);
    opts.num_gpus = 1;
    opts.max_batches = 5;
    core::Pipeline pipe(products(), opts);
    const auto result = pipe.run_epoch();
    const auto &stages = pipe.last_epoch_stage_times();
    ASSERT_EQ(int64_t(stages.size()), result.batches);

    // DGL is fully serial: the event-driven makespan equals both the
    // stage-time sum and the closed-form wall clock.
    double serial = 0.0;
    for (const auto &s : stages)
        serial += s.sample + s.io + s.compute;
    core::TimelineConfig config; // no overlap
    const auto timeline = core::simulate_epoch(stages, config);
    EXPECT_NEAR(timeline.makespan, serial, 1e-12);
    EXPECT_NEAR(timeline.makespan, result.epoch_seconds, 1e-9);
}

TEST(Pipeline, SerializedDatasetRunsIdentically)
{
    // save -> load -> run must reproduce the original pipeline exactly.
    const std::string path = "/tmp/fastgl_pipe_roundtrip.bin";
    ASSERT_TRUE(graph::save_dataset(products(), path));
    graph::Dataset loaded;
    ASSERT_TRUE(graph::load_dataset(loaded, path, false));
    std::remove(path.c_str());

    auto opts = base_options(core::Framework::kFastGL);
    core::Pipeline original(products(), opts);
    core::Pipeline reloaded(loaded, opts);
    const auto a = original.run_epoch();
    const auto b = reloaded.run_epoch();
    EXPECT_DOUBLE_EQ(a.epoch_seconds, b.epoch_seconds);
    EXPECT_EQ(a.nodes_loaded, b.nodes_loaded);
}

TEST(Pipeline, ModelParamBytesAnalytic)
{
    compute::ModelConfig cfg;
    cfg.type = compute::ModelType::kGcn;
    cfg.in_dim = 100;
    cfg.hidden_dim = 64;
    cfg.num_classes = 10;
    cfg.num_layers = 2;
    // (100*64 + 64) + (64*10 + 10) floats.
    EXPECT_EQ(core::model_param_bytes(cfg),
              (100 * 64 + 64 + 64 * 10 + 10) * sizeof(float));

    compute::GnnModel model(cfg);
    EXPECT_EQ(core::model_param_bytes(cfg), model.param_bytes());
}

TEST(Pipeline, ParamBytesMatchRealModelForAllTypes)
{
    for (auto type : {compute::ModelType::kGcn, compute::ModelType::kGin,
                      compute::ModelType::kGat}) {
        compute::ModelConfig cfg;
        cfg.type = type;
        cfg.in_dim = 60;
        cfg.hidden_dim = 32;
        cfg.num_classes = 9;
        cfg.num_layers = 3;
        compute::GnnModel model(cfg);
        EXPECT_EQ(core::model_param_bytes(cfg), model.param_bytes())
            << compute::model_type_name(type);
    }
}

} // namespace
} // namespace fastgl
