/**
 * @file
 * Tests for the deterministic per-stage profiler (fastgl::prof), the
 * closed-loop serving path (Server::serve_closed), and the
 * profiler-driven sampler-pool autoscaler. The standing contract under
 * test: profiling on/off and any autoscale decision sequence leave
 * losses and serving fingerprints bit-identical at any worker count.
 */
#include <gtest/gtest.h>

#include <vector>

#include "core/trainer.h"
#include "graph/datasets.h"
#include "prof/profiler.h"
#include "serve/load_generator.h"
#include "serve/server.h"

namespace fastgl {
namespace {

/** Golden digest of the profiled fixed training epoch below; change it
 *  only when the cost model or profiler schema intentionally moves. */
constexpr uint64_t kGoldenTrainProfile = 0xE60B138C8B4B1002ULL;

const graph::Dataset &
serve_products()
{
    static graph::Dataset ds = [] {
        graph::ReplicaOptions opts;
        opts.size_factor = 0.15;
        opts.materialize_features = false;
        return graph::load_replica(graph::DatasetId::kProducts, opts);
    }();
    return ds;
}

const graph::Dataset &
train_reddit()
{
    static graph::Dataset ds = [] {
        graph::ReplicaOptions opts;
        opts.size_factor = 0.05;
        opts.materialize_features = true;
        return graph::load_replica(graph::DatasetId::kReddit, opts);
    }();
    return ds;
}

serve::ServerOptions
base_server_options()
{
    serve::ServerOptions opts;
    opts.worker_threads = 2;
    opts.fanouts = {5, 10, 15};
    opts.seed = 11;
    return opts;
}

std::vector<serve::InferenceRequest>
make_trace(const serve::Server &server, double rate_rps,
           int64_t num_requests, double slo = 50e-3)
{
    serve::LoadGeneratorOptions lopts;
    lopts.rate_rps = rate_rps;
    lopts.num_requests = num_requests;
    lopts.slo_deadline = slo;
    lopts.seed = 13;
    serve::LoadGenerator gen(server.popularity(), lopts);
    return gen.generate();
}

serve::ClosedLoopScript
make_closed_script(const serve::Server &server, int clients,
                   int64_t per_client, double think = 1e-3)
{
    serve::LoadGeneratorOptions lopts;
    lopts.num_requests = clients * per_client;
    lopts.slo_deadline = 50e-3;
    lopts.seed = 13;
    serve::LoadGenerator gen(server.popularity(), lopts);
    serve::ClosedLoopOptions copts;
    copts.num_clients = clients;
    copts.requests_per_client = per_client;
    copts.think_time = think;
    return gen.generate_closed(copts);
}

// ---------------------------------------------------------------------
// ProfilerTest — recording is observation only
// ---------------------------------------------------------------------

TEST(ProfilerTest, DisabledProfilerIsANoOp)
{
    prof::Profiler off(false);
    off.record(prof::Stage::kSampler, 1e-3, 2e-3, 4);
    off.count_shed(prof::Stage::kFeeder);
    off.record_device(0, 0.0, 1e-3, 1e-3);
    const prof::ProfileReport report = off.report();
    EXPECT_FALSE(report.enabled);
    EXPECT_TRUE(report.stages.empty());
    EXPECT_EQ(off.stage(prof::Stage::kSampler).items, 0);
}

TEST(ProfilerTest, ServeFingerprintIdenticalProfileOnOffAtAnyWidth)
{
    const graph::Dataset &ds = serve_products();
    uint64_t reference = 0;
    for (int workers : {1, 4, 8}) {
        serve::ServerOptions off = base_server_options();
        off.worker_threads = workers;
        serve::ServerOptions on = off;
        on.profile = true;

        serve::Server server_off(ds, off);
        serve::Server server_on(ds, on);
        const auto trace = make_trace(server_off, 4000.0, 384);
        const auto ra = server_off.serve(trace);
        const auto rb = server_on.serve(trace);

        const uint64_t fp_off = server_off.last_stats().fingerprint;
        const uint64_t fp_on = server_on.last_stats().fingerprint;
        EXPECT_EQ(fp_off, fp_on) << "workers=" << workers;
        ASSERT_EQ(ra.size(), rb.size());
        for (size_t i = 0; i < ra.size(); ++i) {
            EXPECT_EQ(ra[i].outcome, rb[i].outcome);
            EXPECT_EQ(ra[i].latency, rb[i].latency);
        }
        if (reference == 0)
            reference = fp_off;
        else
            EXPECT_EQ(fp_off, reference) << "workers=" << workers;
        EXPECT_TRUE(server_on.last_stats().profile.enabled);
        EXPECT_FALSE(server_off.last_stats().profile.enabled);
    }
}

TEST(ProfilerTest, ServeProfileReportIsDeterministic)
{
    const graph::Dataset &ds = serve_products();
    uint64_t profile_fp = 0;
    for (int workers : {1, 4}) {
        serve::ServerOptions opts = base_server_options();
        opts.worker_threads = workers;
        opts.profile = true;
        serve::Server server(ds, opts);
        server.serve(make_trace(server, 4000.0, 384));
        const uint64_t fp =
            server.last_stats().profile.fingerprint();
        if (profile_fp == 0)
            profile_fp = fp;
        else
            EXPECT_EQ(fp, profile_fp) << "workers=" << workers;
    }
}

TEST(ProfilerTest, ServeStageAccountingIsConserved)
{
    const graph::Dataset &ds = serve_products();
    serve::ServerOptions opts = base_server_options();
    opts.profile = true;
    serve::Server server(ds, opts);
    server.serve(make_trace(server, 4000.0, 384));
    const serve::ServingStats &st = server.last_stats();
    const prof::ProfileReport &report = st.profile;

    // Device busy seconds are summed in global dispatch order on both
    // sides, so the profiler's copy is bit-equal to the serving stat.
    EXPECT_EQ(report.device_busy_seconds, st.gpu_busy_seconds);
    ASSERT_EQ(report.stages.size(), prof::kNumStages);
    // Every processed request passes the feeder exactly once; sheds
    // and drops are attributed there too.
    const prof::StageSummary &feeder =
        report.stages[size_t(prof::Stage::kFeeder)];
    EXPECT_EQ(feeder.items, st.offered);
    EXPECT_EQ(feeder.shed, st.shed_queue);
    EXPECT_EQ(feeder.dropped, st.dropped_deadline);
    // One compute record per dispatched batch, occupancy = requests.
    const prof::StageSummary &compute =
        report.stages[size_t(prof::Stage::kCompute)];
    EXPECT_EQ(compute.items, st.batches);
    EXPECT_EQ(report.makespan, st.makespan);
}

TEST(ProfilerTest, TrainerLossesIdenticalProfileOnOff)
{
    const graph::Dataset ds = train_reddit();
    core::TrainerOptions base;
    base.fanouts = {4, 4};
    base.max_batches = 4;
    base.batch_size = 32;

    core::TrainerOptions profiled = base;
    profiled.profile = true;
    core::Trainer off(ds, base);
    core::Trainer on(ds, profiled);
    const auto a = off.train_epoch();
    const auto b = on.train_epoch();

    ASSERT_EQ(a.iteration_losses.size(), b.iteration_losses.size());
    for (size_t i = 0; i < a.iteration_losses.size(); ++i)
        EXPECT_EQ(a.iteration_losses[i], b.iteration_losses[i]);
    EXPECT_EQ(a.mean_loss, b.mean_loss);
    EXPECT_FALSE(a.profile.enabled);
    ASSERT_TRUE(b.profile.enabled);
}

TEST(ProfilerTest, TrainerComputeStageConservesModelledSeconds)
{
    const graph::Dataset ds = train_reddit();
    core::TrainerOptions opts;
    opts.fanouts = {4, 4};
    opts.max_batches = 4;
    opts.batch_size = 32;
    opts.profile = true;
    core::Trainer trainer(ds, opts);
    const auto stats = trainer.train_epoch();

    ASSERT_TRUE(stats.profile.enabled);
    ASSERT_EQ(stats.profile.stages.size(), prof::kNumStages);
    // The compute stage replays the exact doubles the cost model
    // accumulated, in the same order — bit-equal, not just close.
    const prof::StageSummary &compute =
        stats.profile.stages[size_t(prof::Stage::kCompute)];
    EXPECT_EQ(compute.busy_seconds, stats.modelled_compute_seconds);
    EXPECT_EQ(compute.items, 4);
    // The virtual pipeline's makespan covers at least the pure compute
    // time (sampling and gather can only push completion later).
    EXPECT_GE(stats.profile.makespan, stats.modelled_compute_seconds);
}

TEST(ProfilerTest, GoldenProfileFingerprint)
{
    // One-number witness that the profiled virtual replay of a fixed
    // training epoch never drifts: dataset replica, cost model, and
    // profiler accumulation all feed this digest.
    const graph::Dataset ds = train_reddit();
    core::TrainerOptions opts;
    opts.fanouts = {4, 4};
    opts.max_batches = 4;
    opts.batch_size = 32;
    opts.profile = true;
    core::Trainer a(ds, opts);
    core::Trainer b(ds, opts);
    const uint64_t fp_a = a.train_epoch().profile.fingerprint();
    const uint64_t fp_b = b.train_epoch().profile.fingerprint();
    EXPECT_EQ(fp_a, fp_b);
    EXPECT_EQ(fp_a, kGoldenTrainProfile);
}

// ---------------------------------------------------------------------
// ClosedLoopTest — finite clients with think time
// ---------------------------------------------------------------------

TEST(ClosedLoopTest, DeterministicAcrossWorkerCounts)
{
    const graph::Dataset &ds = serve_products();
    uint64_t reference = 0;
    std::vector<serve::InferenceResponse> first;
    for (int workers : {1, 4, 8}) {
        serve::ServerOptions opts = base_server_options();
        opts.worker_threads = workers;
        serve::Server server(ds, opts);
        const auto script = make_closed_script(server, 8, 24);
        const auto responses = server.serve_closed(script);
        const serve::ServingStats &st = server.last_stats();
        EXPECT_EQ(st.closed_loop_clients, 8);
        EXPECT_EQ(st.offered, 8 * 24);
        if (reference == 0) {
            reference = st.fingerprint;
            first = responses;
        } else {
            EXPECT_EQ(st.fingerprint, reference)
                << "workers=" << workers;
            ASSERT_EQ(responses.size(), first.size());
            for (size_t i = 0; i < responses.size(); ++i) {
                EXPECT_EQ(responses[i].outcome, first[i].outcome);
                EXPECT_EQ(responses[i].completion,
                          first[i].completion);
            }
        }
    }
}

TEST(ClosedLoopTest, EveryScriptRequestGetsADecision)
{
    const graph::Dataset &ds = serve_products();
    serve::Server server(ds, base_server_options());
    const auto script = make_closed_script(server, 4, 16);
    const auto responses = server.serve_closed(script);
    ASSERT_EQ(responses.size(), script.requests.size());
    for (size_t i = 0; i < responses.size(); ++i) {
        EXPECT_EQ(responses[i].request_id,
                  static_cast<int64_t>(i));
        EXPECT_NE(responses[i].outcome,
                  serve::Outcome::kUnprocessed);
    }
}

TEST(ClosedLoopTest, PopulationBoundsPendingSoNothingIsShed)
{
    // A closed loop can never have more than num_clients requests in
    // flight, so an admission bound above the population never sheds.
    const graph::Dataset &ds = serve_products();
    serve::ServerOptions opts = base_server_options();
    opts.admission.max_pending = 64;
    serve::Server server(ds, opts);
    const auto script = make_closed_script(server, 8, 16, 0.2e-3);
    server.serve_closed(script);
    const serve::ServingStats &st = server.last_stats();
    EXPECT_EQ(st.shed_queue, 0);
    EXPECT_EQ(st.served + st.dropped_deadline, st.offered);
}

TEST(ClosedLoopTest, ProfileOnOffLeavesClosedLoopBitIdentical)
{
    const graph::Dataset &ds = serve_products();
    serve::ServerOptions off = base_server_options();
    serve::ServerOptions on = off;
    on.profile = true;
    serve::Server server_off(ds, off);
    serve::Server server_on(ds, on);
    const auto script = make_closed_script(server_off, 8, 24);
    server_off.serve_closed(script);
    server_on.serve_closed(script);
    EXPECT_EQ(server_off.last_stats().fingerprint,
              server_on.last_stats().fingerprint);
}

// ---------------------------------------------------------------------
// AutoscaleTest — deterministic elastic sampler pool
// ---------------------------------------------------------------------

serve::LoadGeneratorOptions
flash_options(int64_t num_requests)
{
    // A crowd harsh enough that one modelled sampler worker (service
    // a few microseconds per request) visibly queues: 10x the base
    // rate from 5 ms on, sustained for most of the trace.
    serve::LoadGeneratorOptions lopts;
    lopts.rate_rps = 30000.0;
    lopts.trace = serve::ArrivalTrace::kFlashCrowd;
    lopts.flash_start = 5e-3;
    lopts.flash_duration = 20e-3;
    lopts.flash_multiplier = 10.0;
    lopts.num_requests = num_requests;
    lopts.slo_deadline = 50e-3;
    lopts.seed = 13;
    return lopts;
}

TEST(AutoscaleTest, SamplerPoolRunsAreDeterministic)
{
    const graph::Dataset &ds = serve_products();
    uint64_t reference = 0;
    for (int workers : {1, 4}) {
        serve::ServerOptions opts = base_server_options();
        opts.worker_threads = workers;
        opts.modelled_samplers = 2;
        serve::Server server(ds, opts);
        server.serve(make_trace(server, 4000.0, 384));
        const uint64_t fp = server.last_stats().fingerprint;
        EXPECT_EQ(server.last_stats().modelled_samplers, 2);
        if (reference == 0)
            reference = fp;
        else
            EXPECT_EQ(fp, reference) << "workers=" << workers;
    }
}

TEST(AutoscaleTest, FlashCrowdTriggersScaleUpDeterministically)
{
    const graph::Dataset &ds = serve_products();
    uint64_t reference = 0;
    size_t reference_events = 0;
    for (int workers : {1, 4}) {
        serve::ServerOptions opts = base_server_options();
        opts.worker_threads = workers;
        // A deep admission queue lets the pool backlog (and with it
        // the windowed queue wait the autoscaler reacts to) build up
        // instead of being shed at the front door, and disabling the
        // embedding cache keeps every request on the sampler pool.
        opts.admission.max_pending = 512;
        opts.embedding.capacity_rows = 0;
        opts.autoscale.enabled = true;
        opts.autoscale.min_workers = 1;
        opts.autoscale.max_workers = 8;
        opts.autoscale.wait_high = 0.2e-3;
        serve::Server server(ds, opts);
        serve::LoadGenerator gen(server.popularity(),
                                 flash_options(2048));
        server.serve(gen.generate());
        const serve::ServingStats &st = server.last_stats();
        ASSERT_TRUE(st.autoscale.enabled);
        // The flash crowd must push the pool past its floor.
        EXPECT_FALSE(st.autoscale.events.empty());
        EXPECT_GE(st.autoscale.first_pressure_at, 0.0);
        EXPECT_GE(st.autoscale.first_scale_up_at,
                  st.autoscale.first_pressure_at);
        EXPECT_GE(st.autoscale.scale_up_lag, 0.0);
        for (const serve::AutoscaleEvent &ev : st.autoscale.events) {
            EXPECT_GE(ev.workers_after, opts.autoscale.min_workers);
            EXPECT_LE(ev.workers_after, opts.autoscale.max_workers);
            EXPECT_NE(ev.workers_after, ev.workers_before);
        }
        if (reference == 0) {
            reference = st.fingerprint;
            reference_events = st.autoscale.events.size();
        } else {
            EXPECT_EQ(st.fingerprint, reference)
                << "workers=" << workers;
            EXPECT_EQ(st.autoscale.events.size(), reference_events);
        }
    }
}

TEST(AutoscaleTest, ProfileOnOffLeavesAutoscaledRunBitIdentical)
{
    const graph::Dataset &ds = serve_products();
    serve::ServerOptions off = base_server_options();
    off.autoscale.enabled = true;
    off.autoscale.max_workers = 8;
    serve::ServerOptions on = off;
    on.profile = true;
    serve::Server server_off(ds, off);
    serve::Server server_on(ds, on);
    serve::LoadGenerator gen(server_off.popularity(),
                             flash_options(512));
    const auto trace = gen.generate();
    server_off.serve(trace);
    server_on.serve(trace);
    EXPECT_EQ(server_off.last_stats().fingerprint,
              server_on.last_stats().fingerprint);
    // The autoscaler saw the same pressure either way.
    ASSERT_EQ(server_on.last_stats().autoscale.events.size(),
              server_off.last_stats().autoscale.events.size());
}

TEST(AutoscaleTest, UnitPolicyScalesUpOnPressureAndDownWhenIdle)
{
    serve::AutoscalerOptions opts;
    opts.enabled = true;
    opts.min_workers = 1;
    opts.max_workers = 4;
    opts.check_interval = 1e-3;
    opts.wait_high = 0.5e-3;
    opts.util_low = 0.25;
    opts.cooldown = 0.0;
    serve::Autoscaler scaler(opts, 1);

    // Window 1: heavy queueing -> double the pool.
    for (int i = 0; i < 8; ++i)
        scaler.observe(0.5e-3, 2e-3, 0.1e-3);
    EXPECT_EQ(scaler.maybe_scale(1.1e-3, 1), 2);
    // Window 2: almost no work -> shrink by one.
    scaler.observe(1.5e-3, 0.0, 0.01e-3);
    EXPECT_EQ(scaler.maybe_scale(2.2e-3, 2), 1);
    // Window 3: idle at the floor -> no change.
    scaler.observe(2.5e-3, 0.0, 0.01e-3);
    EXPECT_EQ(scaler.maybe_scale(3.3e-3, 1), 0);

    const serve::AutoscaleReport report = scaler.report(1);
    ASSERT_EQ(report.events.size(), 2u);
    EXPECT_EQ(report.events[0].workers_after, 2);
    EXPECT_EQ(report.events[1].workers_after, 1);
    EXPECT_GE(report.first_pressure_at, 0.0);
    EXPECT_EQ(report.first_scale_up_at, report.events[0].at);
}

} // namespace
} // namespace fastgl
