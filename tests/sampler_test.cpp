/**
 * @file
 * Tests for the k-hop neighbour sampler, the random-walk sampler and the
 * batch splitter: structural invariants every sampled subgraph must hold.
 */
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "graph/generators.h"
#include "sample/batch_splitter.h"
#include "sample/neighbor_sampler.h"
#include "sample/random_walk_sampler.h"

namespace fastgl {
namespace {

graph::CsrGraph
test_graph()
{
    graph::RmatParams params;
    params.num_nodes = 4000;
    params.num_edges = 40000;
    params.seed = 77;
    return graph::generate_rmat(params);
}

/** Validate every invariant of a sampled subgraph. */
void
check_subgraph(const sample::SampledSubgraph &sg,
               const graph::CsrGraph &g, size_t num_seeds, int hops)
{
    // Seeds occupy the first local IDs.
    ASSERT_GE(sg.num_nodes(), int64_t(num_seeds));
    EXPECT_EQ(sg.num_seeds, int64_t(num_seeds));
    EXPECT_EQ(int(sg.blocks.size()), hops);

    // nodes[] are unique, valid global IDs.
    std::unordered_set<graph::NodeId> uniq;
    for (graph::NodeId u : sg.nodes) {
        EXPECT_GE(u, 0);
        EXPECT_LT(u, g.num_nodes());
        EXPECT_TRUE(uniq.insert(u).second) << "duplicate node " << u;
    }

    // Monotone frontier: block h has exactly the first n_h nodes as
    // targets, sources stay within local-ID range.
    int64_t prev_targets = sg.num_seeds;
    for (int h = 0; h < hops; ++h) {
        const auto &blk = sg.blocks[h];
        EXPECT_GE(blk.num_targets(), prev_targets);
        EXPECT_EQ(blk.indptr.front(), 0);
        EXPECT_EQ(blk.indptr.back(), blk.num_edges());
        for (size_t t = 0; t + 1 < blk.indptr.size(); ++t)
            EXPECT_LE(blk.indptr[t], blk.indptr[t + 1]);
        for (graph::NodeId src : blk.sources) {
            EXPECT_GE(src, 0);
            EXPECT_LT(src, sg.num_nodes());
        }
        for (int64_t t = 0; t < blk.num_targets(); ++t)
            EXPECT_EQ(blk.targets[t], t);
        prev_targets = blk.num_targets();
    }

    EXPECT_GT(sg.instances, 0);
    EXPECT_EQ(sg.id_map.uniques, sg.num_nodes());
    EXPECT_GE(sg.id_map.probes, sg.id_map.uniques);
}

/** Edges in the block must be real graph edges (or self loops). */
void
check_edges_exist(const sample::SampledSubgraph &sg,
                  const graph::CsrGraph &g)
{
    for (const auto &blk : sg.blocks) {
        for (int64_t t = 0; t < blk.num_targets(); ++t) {
            const graph::NodeId gu = sg.nodes[static_cast<size_t>(t)];
            const auto nbrs = g.neighbors(gu);
            const std::set<graph::NodeId> nbr_set(nbrs.begin(),
                                                  nbrs.end());
            for (graph::EdgeId e = blk.indptr[t]; e < blk.indptr[t + 1];
                 ++e) {
                const graph::NodeId gv =
                    sg.nodes[static_cast<size_t>(blk.sources[e])];
                EXPECT_TRUE(gv == gu || nbr_set.count(gv))
                    << gv << " is not a neighbour of " << gu;
            }
        }
    }
}

class FanoutProperty
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(FanoutProperty, SubgraphInvariantsHold)
{
    graph::CsrGraph g = test_graph();
    sample::NeighborSamplerOptions opts;
    opts.fanouts = GetParam();
    opts.seed = 5;
    sample::NeighborSampler sampler(g, opts);

    std::vector<graph::NodeId> seeds = {1, 5, 9, 100, 250, 1033};
    sample::SampledSubgraph sg = sampler.sample(seeds);
    check_subgraph(sg, g, seeds.size(), int(opts.fanouts.size()));
    check_edges_exist(sg, g);
}

TEST_P(FanoutProperty, FanoutBoundsRespected)
{
    graph::CsrGraph g = test_graph();
    sample::NeighborSamplerOptions opts;
    opts.fanouts = GetParam();
    opts.seed = 6;
    sample::NeighborSampler sampler(g, opts);

    std::vector<graph::NodeId> seeds = {10, 20, 30};
    sample::SampledSubgraph sg = sampler.sample(seeds);
    const int hops = int(opts.fanouts.size());
    for (int h = 0; h < hops; ++h) {
        const int fanout = opts.fanouts[size_t(hops - 1 - h)];
        const auto &blk = sg.blocks[size_t(h)];
        for (int64_t t = 0; t < blk.num_targets(); ++t) {
            const graph::EdgeId deg = blk.indptr[t + 1] - blk.indptr[t];
            // At most fanout sampled + 1 self edge.
            EXPECT_LE(deg, fanout + 1);
            EXPECT_GE(deg, 1); // the self edge at minimum
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    PaperFanouts, FanoutProperty,
    ::testing::Values(std::vector<int>{5}, std::vector<int>{5, 10},
                      std::vector<int>{5, 10, 15},
                      std::vector<int>{5, 5, 10, 10}));

TEST(NeighborSampler, DeterministicForSameSeed)
{
    graph::CsrGraph g = test_graph();
    sample::NeighborSamplerOptions opts;
    opts.seed = 42;
    std::vector<graph::NodeId> seeds = {7, 13, 77};
    sample::NeighborSampler a(g, opts), b(g, opts);
    const auto sa = a.sample(seeds);
    const auto sb = b.sample(seeds);
    EXPECT_EQ(sa.nodes, sb.nodes);
    EXPECT_EQ(sa.instances, sb.instances);
    for (size_t h = 0; h < sa.blocks.size(); ++h)
        EXPECT_EQ(sa.blocks[h].sources, sb.blocks[h].sources);
}

TEST(NeighborSampler, SelfLoopPresentForEveryTarget)
{
    graph::CsrGraph g = test_graph();
    sample::NeighborSamplerOptions opts;
    opts.fanouts = {5, 10};
    sample::NeighborSampler sampler(g, opts);
    std::vector<graph::NodeId> seeds = {3, 4, 5};
    const auto sg = sampler.sample(seeds);
    for (const auto &blk : sg.blocks) {
        for (int64_t t = 0; t < blk.num_targets(); ++t) {
            bool self = false;
            for (graph::EdgeId e = blk.indptr[t]; e < blk.indptr[t + 1];
                 ++e) {
                if (blk.sources[e] == t)
                    self = true;
            }
            EXPECT_TRUE(self) << "no self edge for target " << t;
        }
    }
}

TEST(NeighborSampler, HighOverlapAcrossBatchesOnDenseGraph)
{
    // The Match-Reorder premise: consecutive batches overlap heavily on
    // dense graphs (paper Table 4, Reddit 93%).
    graph::CsrGraph g = test_graph();
    sample::NeighborSamplerOptions opts;
    opts.seed = 3;
    sample::NeighborSampler sampler(g, opts);
    std::vector<graph::NodeId> s1, s2;
    for (graph::NodeId u = 0; u < 200; ++u)
        s1.push_back(u);
    for (graph::NodeId u = 200; u < 400; ++u)
        s2.push_back(u);
    const auto a = sampler.sample(s1);
    const auto b = sampler.sample(s2);
    std::unordered_set<graph::NodeId> sa(a.nodes.begin(), a.nodes.end());
    int64_t overlap = 0;
    for (graph::NodeId u : b.nodes)
        overlap += sa.count(u);
    const double m =
        double(overlap) /
        double(std::min(a.nodes.size(), b.nodes.size()));
    EXPECT_GT(m, 0.3);
}

TEST(RandomWalkSampler, SingleBlockInvariants)
{
    graph::CsrGraph g = test_graph();
    sample::RandomWalkOptions opts;
    opts.seed = 9;
    sample::RandomWalkSampler sampler(g, opts);
    std::vector<graph::NodeId> seeds = {1, 2, 3, 4, 50};
    const auto sg = sampler.sample(seeds);
    ASSERT_EQ(sg.blocks.size(), 1u);
    EXPECT_EQ(sg.num_seeds, 5);
    EXPECT_EQ(sg.blocks[0].num_targets(), 5);
    // Top-k bound: at most top_k walk destinations + self.
    for (int64_t t = 0; t < 5; ++t) {
        const auto deg =
            sg.blocks[0].indptr[t + 1] - sg.blocks[0].indptr[t];
        EXPECT_LE(deg, opts.top_k + 1);
        EXPECT_GE(deg, 1);
    }
    for (graph::NodeId src : sg.blocks[0].sources) {
        EXPECT_GE(src, 0);
        EXPECT_LT(src, sg.num_nodes());
    }
    EXPECT_GT(sg.edges_examined, 0);
}

TEST(RandomWalkSampler, SourcesAreWalkReachable)
{
    // Regression test: every sampled source must be reachable from its
    // seed within walk_length hops (an earlier bug inserted visit counts
    // as node IDs, which passed range checks but were not walk nodes).
    graph::CsrGraph g = test_graph();
    sample::RandomWalkOptions opts;
    opts.seed = 10;
    sample::RandomWalkSampler sampler(g, opts);
    std::vector<graph::NodeId> seeds = {100, 2000};
    const auto sg = sampler.sample(seeds);

    for (int64_t t = 0; t < sg.num_seeds; ++t) {
        const graph::NodeId seed = sg.nodes[size_t(t)];
        // BFS ball of radius walk_length around the seed.
        std::unordered_set<graph::NodeId> ball = {seed};
        std::vector<graph::NodeId> frontier = {seed};
        for (int hop = 0; hop < opts.walk_length; ++hop) {
            std::vector<graph::NodeId> next;
            for (graph::NodeId u : frontier) {
                for (graph::NodeId v : g.neighbors(u)) {
                    if (ball.insert(v).second)
                        next.push_back(v);
                }
            }
            frontier = std::move(next);
        }
        const auto &blk = sg.blocks[0];
        for (graph::EdgeId e = blk.indptr[t]; e < blk.indptr[t + 1];
             ++e) {
            const graph::NodeId gv =
                sg.nodes[size_t(blk.sources[e])];
            EXPECT_TRUE(ball.count(gv))
                << gv << " not walk-reachable from seed " << seed;
        }
    }
}

TEST(RandomWalkSampler, VisitsSpreadBeyondSeeds)
{
    // A healthy walk neighbourhood contains far more distinct non-seed
    // nodes than seeds on a large graph.
    graph::CsrGraph g = test_graph();
    sample::RandomWalkOptions opts;
    opts.seed = 12;
    sample::RandomWalkSampler sampler(g, opts);
    std::vector<graph::NodeId> seeds;
    for (graph::NodeId u = 0; u < 100; ++u)
        seeds.push_back(u * 31 + 5);
    const auto sg = sampler.sample(seeds);
    EXPECT_GT(sg.num_nodes(), 3 * int64_t(seeds.size()));
}

TEST(RandomWalkSampler, Deterministic)
{
    graph::CsrGraph g = test_graph();
    sample::RandomWalkOptions opts;
    opts.seed = 11;
    sample::RandomWalkSampler a(g, opts), b(g, opts);
    std::vector<graph::NodeId> seeds = {10, 11, 12};
    EXPECT_EQ(a.sample(seeds).nodes, b.sample(seeds).nodes);
}

TEST(BatchSplitter, CoversAllNodesExactlyOncePerEpoch)
{
    std::vector<graph::NodeId> nodes;
    for (graph::NodeId u = 0; u < 103; ++u)
        nodes.push_back(u);
    sample::BatchSplitter splitter(nodes, 10, 1);
    EXPECT_EQ(splitter.num_batches(), 11);
    splitter.shuffle_epoch();
    std::set<graph::NodeId> seen;
    for (int64_t b = 0; b < splitter.num_batches(); ++b) {
        for (graph::NodeId u : splitter.batch(b))
            EXPECT_TRUE(seen.insert(u).second);
    }
    EXPECT_EQ(seen.size(), nodes.size());
}

TEST(BatchSplitter, LastBatchMayBeShort)
{
    std::vector<graph::NodeId> nodes(25);
    for (graph::NodeId u = 0; u < 25; ++u)
        nodes[size_t(u)] = u;
    sample::BatchSplitter splitter(nodes, 10, 1);
    EXPECT_EQ(splitter.batch(0).size(), 10u);
    EXPECT_EQ(splitter.batch(2).size(), 5u);
}

TEST(BatchSplitter, ShuffleChangesOrderDeterministically)
{
    std::vector<graph::NodeId> nodes(100);
    for (graph::NodeId u = 0; u < 100; ++u)
        nodes[size_t(u)] = u;
    sample::BatchSplitter a(nodes, 100, 5), b(nodes, 100, 5);
    a.shuffle_epoch();
    b.shuffle_epoch();
    const auto ba = a.batch(0);
    const auto bb = b.batch(0);
    EXPECT_TRUE(std::equal(ba.begin(), ba.end(), bb.begin()));
    // And shuffling actually permutes.
    bool moved = false;
    for (size_t i = 0; i < ba.size(); ++i)
        moved |= (ba[i] != graph::NodeId(i));
    EXPECT_TRUE(moved);
}

} // namespace
} // namespace fastgl
