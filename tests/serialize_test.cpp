/**
 * @file
 * Round-trip and corruption tests for graph/dataset serialization.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/serialize.h"

namespace fastgl {
namespace {

std::string
temp_path(const char *name)
{
    return std::string("/tmp/fastgl_serialize_") + name + ".bin";
}

TEST(Serialize, GraphRoundTrip)
{
    graph::RmatParams params;
    params.num_nodes = 1000;
    params.num_edges = 8000;
    params.seed = 77;
    graph::CsrGraph original = graph::generate_rmat(params);

    const std::string path = temp_path("graph");
    ASSERT_TRUE(graph::save_graph(original, path));

    graph::CsrGraph loaded;
    ASSERT_TRUE(graph::load_graph(loaded, path));
    EXPECT_EQ(loaded.indptr(), original.indptr());
    EXPECT_EQ(loaded.indices(), original.indices());
    std::remove(path.c_str());
}

TEST(Serialize, EmptyGraphRoundTrip)
{
    graph::CsrGraph original;
    const std::string path = temp_path("empty");
    ASSERT_TRUE(graph::save_graph(original, path));
    graph::CsrGraph loaded({0, 1}, {0});
    ASSERT_TRUE(graph::load_graph(loaded, path));
    EXPECT_EQ(loaded.num_nodes(), 0);
    std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsMissingFile)
{
    graph::CsrGraph graph;
    EXPECT_FALSE(graph::load_graph(graph, "/tmp/does_not_exist_xyz.bin"));
}

TEST(Serialize, LoadRejectsBadMagic)
{
    const std::string path = temp_path("badmagic");
    FILE *f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[32] = "not a fastgl file at all";
    fwrite(junk, 1, sizeof(junk), f);
    fclose(f);
    graph::CsrGraph graph;
    EXPECT_FALSE(graph::load_graph(graph, path));
    std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsTruncatedFile)
{
    graph::RmatParams params;
    params.num_nodes = 500;
    params.num_edges = 3000;
    graph::CsrGraph original = graph::generate_rmat(params);
    const std::string path = temp_path("truncated");
    ASSERT_TRUE(graph::save_graph(original, path));

    // Truncate to half.
    FILE *f = fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    fseek(f, 0, SEEK_END);
    const long size = ftell(f);
    fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

    graph::CsrGraph loaded;
    EXPECT_FALSE(graph::load_graph(loaded, path));
    std::remove(path.c_str());
}

TEST(Serialize, DatasetRoundTripPreservesEverything)
{
    graph::ReplicaOptions ropts;
    ropts.size_factor = 0.05;
    ropts.materialize_features = false;
    const graph::Dataset original =
        graph::load_replica(graph::DatasetId::kProducts, ropts);

    const std::string path = temp_path("dataset");
    ASSERT_TRUE(graph::save_dataset(original, path));

    graph::Dataset loaded;
    ASSERT_TRUE(
        graph::load_dataset(loaded, path, /*materialize=*/false));
    EXPECT_EQ(loaded.id, original.id);
    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.batch_size, original.batch_size);
    EXPECT_DOUBLE_EQ(loaded.scale, original.scale);
    EXPECT_EQ(loaded.train_nodes, original.train_nodes);
    EXPECT_EQ(loaded.graph.indices(), original.graph.indices());
    EXPECT_EQ(loaded.features.dim(), original.features.dim());
    EXPECT_EQ(loaded.features.num_classes(),
              original.features.num_classes());

    // Features regenerate identically from the stored seed.
    std::vector<float> a(size_t(original.features.dim()));
    std::vector<float> b(size_t(loaded.features.dim()));
    original.features.gather_row(42, a.data());
    loaded.features.gather_row(42, b.data());
    EXPECT_EQ(a, b);
    EXPECT_EQ(original.features.label(42), loaded.features.label(42));
    std::remove(path.c_str());
}

TEST(Serialize, DatasetLoadRejectsGraphMagic)
{
    graph::CsrGraph g({0, 1}, {0});
    const std::string path = temp_path("wrongtype");
    ASSERT_TRUE(graph::save_graph(g, path));
    graph::Dataset ds;
    EXPECT_FALSE(graph::load_dataset(ds, path));
    std::remove(path.c_str());
}

} // namespace
} // namespace fastgl
