/**
 * @file
 * Tests for fastgl::serve — the load generator, dynamic batcher,
 * embedding cache, and the Server's virtual-clock event machine:
 * bit-identical serving results across worker thread counts, admission
 * control engaging under overload instead of latency diverging, and the
 * modelled benefits of batching and the embedding cache.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "graph/datasets.h"
#include "serve/batcher.h"
#include "serve/embedding_cache.h"
#include "serve/load_generator.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace fastgl {
namespace {

const graph::Dataset &
products()
{
    static graph::Dataset ds = [] {
        graph::ReplicaOptions opts;
        opts.size_factor = 0.15;
        opts.materialize_features = false;
        return graph::load_replica(graph::DatasetId::kProducts, opts);
    }();
    return ds;
}

serve::ServerOptions
base_server_options()
{
    serve::ServerOptions opts;
    opts.worker_threads = 2;
    opts.fanouts = {5, 10, 15};
    opts.seed = 11;
    return opts;
}

std::vector<serve::InferenceRequest>
make_trace(const serve::Server &server, double rate_rps,
           int64_t num_requests, double slo = 50e-3)
{
    serve::LoadGeneratorOptions lopts;
    lopts.rate_rps = rate_rps;
    lopts.num_requests = num_requests;
    lopts.slo_deadline = slo;
    lopts.seed = 13;
    serve::LoadGenerator gen(server.popularity(), lopts);
    return gen.generate();
}

// ---------------------------------------------------------------------
// LoadGenerator
// ---------------------------------------------------------------------

TEST(LoadGenerator, TraceIsDeterministicDenseAndArrivalOrdered)
{
    std::vector<graph::NodeId> population(100);
    for (size_t i = 0; i < population.size(); ++i)
        population[i] = static_cast<graph::NodeId>(i);

    serve::LoadGeneratorOptions opts;
    opts.rate_rps = 500.0;
    opts.num_requests = 256;
    opts.slo_deadline = 10e-3;
    opts.seed = 42;
    serve::LoadGenerator gen(population, opts);

    const auto a = gen.generate();
    const auto b = gen.generate();
    ASSERT_EQ(a.size(), 256u);
    double prev = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, static_cast<int64_t>(i));
        EXPECT_GE(a[i].arrival, prev); // Poisson arrivals are monotone
        prev = a[i].arrival;
        EXPECT_EQ(a[i].deadline, a[i].arrival + opts.slo_deadline);
        ASSERT_EQ(a[i].targets.size(), 1u);
        // Bitwise repeatability.
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].targets, b[i].targets);
    }
    // Mean arrival gap tracks the offered rate (law of large numbers;
    // generous tolerance keeps this deterministic check robust).
    const double mean_gap = a.back().arrival / double(a.size() - 1);
    EXPECT_NEAR(mean_gap, 1.0 / opts.rate_rps, 0.5 / opts.rate_rps);
}

TEST(LoadGenerator, HotTrafficConcentratesOnHeadOfPopulation)
{
    std::vector<graph::NodeId> population(1000);
    for (size_t i = 0; i < population.size(); ++i)
        population[i] = static_cast<graph::NodeId>(i);

    serve::LoadGeneratorOptions opts;
    opts.num_requests = 4000;
    opts.hot_fraction = 0.10;
    opts.hot_traffic = 0.80;
    opts.seed = 7;
    serve::LoadGenerator gen(population, opts);

    int64_t hot = 0, total = 0;
    for (const auto &req : gen.generate()) {
        for (graph::NodeId t : req.targets) {
            hot += t < 100 ? 1 : 0; // first 10% of the population
            ++total;
        }
    }
    // 80% of draws target the hot set directly, plus the uniform tail's
    // incidental 10% x 20%: expect ~82%, assert comfortably above the
    // 10% a uniform generator would give.
    EXPECT_GT(double(hot) / double(total), 0.6);
}

TEST(LoadGenerator, TargetsPerRequestAreDistinct)
{
    std::vector<graph::NodeId> population(50);
    for (size_t i = 0; i < population.size(); ++i)
        population[i] = static_cast<graph::NodeId>(i);

    serve::LoadGeneratorOptions opts;
    opts.num_requests = 200;
    opts.targets_per_request = 4;
    serve::LoadGenerator gen(population, opts);
    for (const auto &req : gen.generate()) {
        std::set<graph::NodeId> uniq(req.targets.begin(),
                                     req.targets.end());
        EXPECT_EQ(uniq.size(), req.targets.size());
    }
}

// ---------------------------------------------------------------------
// DynamicBatcher
// ---------------------------------------------------------------------

serve::PendingRequest
pending(int64_t id, double arrival)
{
    serve::PendingRequest pr;
    pr.request.id = id;
    pr.request.arrival = arrival;
    return pr;
}

TEST(DynamicBatcher, SizeTriggerClosesWhenFull)
{
    serve::BatcherPolicy policy;
    policy.max_batch = 3;
    policy.max_wait = 1.0;
    serve::DynamicBatcher batcher(policy);

    EXPECT_TRUE(batcher.empty());
    EXPECT_EQ(batcher.close_time(),
              std::numeric_limits<double>::infinity());
    batcher.admit(pending(0, 0.10), 0.10);
    batcher.admit(pending(1, 0.12), 0.12);
    EXPECT_FALSE(batcher.full());
    batcher.admit(pending(2, 0.13), 0.13);
    EXPECT_TRUE(batcher.full());

    const auto batch = batcher.take();
    ASSERT_EQ(batch.size(), 3u);
    // Admission order preserved.
    EXPECT_EQ(batch[0].request.id, 0);
    EXPECT_EQ(batch[2].request.id, 2);
    EXPECT_TRUE(batcher.empty());
}

TEST(DynamicBatcher, WaitTriggerTracksOldestMember)
{
    serve::BatcherPolicy policy;
    policy.max_batch = 100;
    policy.max_wait = 5e-3;
    serve::DynamicBatcher batcher(policy);

    batcher.admit(pending(0, 1.000), 1.000);
    batcher.admit(pending(1, 1.004), 1.004);
    // close_time is anchored to the *first* admission.
    EXPECT_DOUBLE_EQ(batcher.close_time(), 1.005);
    batcher.take();
    // The next batch re-anchors.
    batcher.admit(pending(2, 2.000), 2.000);
    EXPECT_DOUBLE_EQ(batcher.close_time(), 2.005);
}

TEST(DynamicBatcher, ZeroWaitDisablesCoalescing)
{
    serve::BatcherPolicy policy;
    policy.max_batch = 1;
    policy.max_wait = 0.0;
    serve::DynamicBatcher batcher(policy);
    batcher.admit(pending(0, 0.5), 0.5);
    EXPECT_TRUE(batcher.full()); // dispatches immediately
    EXPECT_DOUBLE_EQ(batcher.close_time(), 0.5);
}

// ---------------------------------------------------------------------
// EmbeddingCache
// ---------------------------------------------------------------------

TEST(EmbeddingCache, LruEvictsColdestAndStalenessExpires)
{
    serve::EmbeddingCacheOptions opts;
    opts.capacity_rows = 2;
    opts.staleness = 1.0;
    serve::EmbeddingCache cache(opts);

    cache.update(10, 0.0);
    cache.update(20, 0.1);
    EXPECT_TRUE(cache.lookup(10, 0.5));
    // Node 20 is now LRU; inserting 30 evicts it.
    cache.update(30, 0.6);
    EXPECT_EQ(cache.size(), 2);
    EXPECT_FALSE(cache.lookup(20, 0.7));
    EXPECT_TRUE(cache.lookup(30, 0.7));
    // Staleness: node 10 was computed at 0.0; at t=1.5 it is stale.
    EXPECT_FALSE(cache.lookup(10, 1.5));
    // update() refreshes the timestamp.
    cache.update(30, 2.0);
    EXPECT_TRUE(cache.lookup(30, 2.9));
    EXPECT_GT(cache.hits(), 0);
    EXPECT_GT(cache.misses(), 0);
}

TEST(EmbeddingCache, ZeroCapacityDisables)
{
    serve::EmbeddingCacheOptions opts;
    opts.capacity_rows = 0;
    serve::EmbeddingCache cache(opts);
    EXPECT_FALSE(cache.enabled());
    cache.update(1, 0.0);
    EXPECT_FALSE(cache.lookup(1, 0.0));
    EXPECT_EQ(cache.size(), 0);
}

// ---------------------------------------------------------------------
// Server: determinism
// ---------------------------------------------------------------------

void
expect_identical_serving(const serve::ServingStats &a,
                         const serve::ServingStats &b)
{
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.served_late, b.served_late);
    EXPECT_EQ(a.embedding_hits, b.embedding_hits);
    EXPECT_EQ(a.shed_queue, b.shed_queue);
    EXPECT_EQ(a.dropped_deadline, b.dropped_deadline);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.p50_latency, b.p50_latency);
    EXPECT_EQ(a.p99_latency, b.p99_latency);
    EXPECT_EQ(a.feature_hits, b.feature_hits);
    EXPECT_EQ(a.feature_misses, b.feature_misses);
    EXPECT_EQ(a.gpu_busy_seconds, b.gpu_busy_seconds);
}

TEST(Serve, BitIdenticalAcrossWorkerThreadCounts)
{
    auto opts = base_server_options();
    opts.worker_threads = 1;
    serve::Server reference_server(products(), opts);
    const auto trace = make_trace(reference_server, 3000.0, 384);
    const auto reference = reference_server.serve(trace);
    const serve::ServingStats ref_stats = reference_server.last_stats();
    EXPECT_GT(ref_stats.served, 0);

    for (int threads : {4, 8}) {
        auto topts = base_server_options();
        topts.worker_threads = threads;
        serve::Server server(products(), topts);
        const auto responses = server.serve(trace);
        expect_identical_serving(ref_stats, server.last_stats());
        ASSERT_EQ(responses.size(), reference.size());
        for (size_t i = 0; i < responses.size(); ++i) {
            EXPECT_EQ(responses[i].outcome, reference[i].outcome);
            EXPECT_EQ(responses[i].latency, reference[i].latency);
            EXPECT_EQ(responses[i].batch_id, reference[i].batch_id);
        }
    }
}

TEST(Serve, RepeatedServeOnOneServerIsBitIdentical)
{
    serve::Server server(products(), base_server_options());
    const auto trace = make_trace(server, 2000.0, 256);
    server.serve(trace);
    const serve::ServingStats first = server.last_stats();
    server.serve(trace); // caches start cold on every call
    expect_identical_serving(first, server.last_stats());
}

TEST(Serve, RealForwardPredictionsBitIdenticalAcrossThreadCounts)
{
    // compute_logits runs the real numeric forward pass per batch on
    // the kernel engine; predictions (and the fingerprint words they
    // add) must not depend on worker threads or engine width.
    auto ref_opts = base_server_options();
    ref_opts.worker_threads = 1;
    ref_opts.compute_logits = true;
    ref_opts.compute_threads = 1;
    serve::Server reference_server(products(), ref_opts);
    const auto trace = make_trace(reference_server, 2000.0, 192);
    const auto reference = reference_server.serve(trace);
    const serve::ServingStats ref_stats = reference_server.last_stats();
    EXPECT_GT(ref_stats.compute_batches, 0);
    EXPECT_GT(ref_stats.compute_seconds, 0.0);

    // At least one served-by-batch response carries predictions in
    // class range.
    const int num_classes = [] {
        return static_cast<int>(products().features.num_classes());
    }();
    bool any_predicted = false;
    for (const auto &resp : reference) {
        if (resp.batch_id < 0)
            continue;
        EXPECT_FALSE(resp.predicted.empty());
        for (int cls : resp.predicted) {
            EXPECT_GE(cls, 0);
            EXPECT_LT(cls, num_classes);
        }
        any_predicted = true;
    }
    EXPECT_TRUE(any_predicted);

    auto opts = base_server_options();
    opts.worker_threads = 4;
    opts.compute_logits = true;
    opts.compute_threads = 4;
    serve::Server server(products(), opts);
    const auto responses = server.serve(trace);
    expect_identical_serving(ref_stats, server.last_stats());
    ASSERT_EQ(responses.size(), reference.size());
    for (size_t i = 0; i < responses.size(); ++i)
        EXPECT_EQ(responses[i].predicted, reference[i].predicted);
}

// ---------------------------------------------------------------------
// Server: admission control under overload
// ---------------------------------------------------------------------

TEST(Serve, SheddingBoundsTailLatencyUnderOverload)
{
    // An offered rate far beyond capacity. Protected: queue-depth
    // shedding + deadline drops keep the pending set, and with it the
    // tail latency, bounded. Unprotected: the backlog grows without
    // bound and the tail diverges toward the full trace duration.
    const double rate = 300000.0;
    const int64_t n = 1024;
    const double slo = 20e-3;

    auto protected_opts = base_server_options();
    protected_opts.admission.max_pending = 32;
    protected_opts.admission.early_drop = true;
    serve::Server protected_server(products(), protected_opts);
    const auto trace = make_trace(protected_server, rate, n, slo);
    protected_server.serve(trace);
    const serve::ServingStats prot = protected_server.last_stats();

    auto open_opts = base_server_options();
    open_opts.admission.max_pending = 0; // shedding off
    open_opts.admission.early_drop = false;
    serve::Server open_server(products(), open_opts);
    open_server.serve(trace);
    const serve::ServingStats open = open_server.last_stats();

    // Overload engages admission control instead of growing the queue.
    EXPECT_GT(prot.shed_queue + prot.dropped_deadline, 0);
    EXPECT_GT(prot.shed_rate, 0.0);
    EXPECT_EQ(open.shed_queue + open.dropped_deadline, 0);
    EXPECT_EQ(open.served, n);

    // The protected tail is finite and far below the diverging one.
    EXPECT_TRUE(std::isfinite(prot.p99_latency));
    EXPECT_GT(prot.p99_latency, 0.0);
    EXPECT_LT(prot.p99_latency, 0.5 * open.p99_latency);
}

// ---------------------------------------------------------------------
// Server: batching and embedding cache pay off
// ---------------------------------------------------------------------

TEST(Serve, MicroBatchingServesMoreThanNoBatchUnderLoad)
{
    const double rate = 20000.0;
    const int64_t n = 512;

    auto batched_opts = base_server_options();
    batched_opts.batcher.max_batch = 32;
    batched_opts.batcher.max_wait = 2e-3;
    serve::Server batched(products(), batched_opts);
    const auto trace = make_trace(batched, rate, n);
    batched.serve(trace);
    const serve::ServingStats with = batched.last_stats();

    auto single_opts = base_server_options();
    single_opts.batcher.max_batch = 1; // the no-batching baseline
    single_opts.batcher.max_wait = 0.0;
    serve::Server single(products(), single_opts);
    single.serve(trace);
    const serve::ServingStats without = single.last_stats();

    EXPECT_GT(with.mean_batch_size, 1.5);
    EXPECT_DOUBLE_EQ(without.mean_batch_size, 1.0);
    // Amortized launch/PCIe overhead and batch-level dedup let the
    // batched server complete more of the same offered load.
    EXPECT_GT(with.served, without.served);
    EXPECT_LT(with.shed_rate, without.shed_rate);
}

TEST(Serve, EmbeddingCacheShortCircuitsHotRepeats)
{
    const double rate = 20000.0;
    const int64_t n = 512;

    auto cached_opts = base_server_options();
    cached_opts.embedding.capacity_rows = -1; // default n/10
    cached_opts.embedding.staleness = 1.0;    // generous freshness
    serve::Server cached(products(), cached_opts);
    const auto trace = make_trace(cached, rate, n);
    cached.serve(trace);
    const serve::ServingStats with = cached.last_stats();

    auto cold_opts = base_server_options();
    cold_opts.embedding.capacity_rows = 0; // embedding cache off
    serve::Server cold(products(), cold_opts);
    cold.serve(trace);
    const serve::ServingStats without = cold.last_stats();

    // The skewed trace re-requests hot nodes; fresh embeddings answer
    // those without sampling, PCIe, or compute.
    EXPECT_GT(with.embedding_hits, 0);
    EXPECT_EQ(without.embedding_hits, 0);
    EXPECT_GT(with.embedding_hit_rate, 0.0);
    // Offloaded work serves at least as many requests within deadline.
    EXPECT_GE(with.served - with.served_late,
              without.served - without.served_late);
    EXPECT_LE(with.gpu_busy_seconds, without.gpu_busy_seconds);
}

TEST(Serve, FeatureCacheReducesPcieTraffic)
{
    serve::Server server(products(), base_server_options());
    const auto trace = make_trace(server, 2000.0, 256);
    server.serve(trace);
    const serve::ServingStats st = server.last_stats();
    EXPECT_GT(server.feature_cache_rows(), 0);
    EXPECT_GT(st.feature_hits, 0);
    EXPECT_GT(st.feature_hit_rate, 0.0);
}

// ---------------------------------------------------------------------
// Server: lifecycle
// ---------------------------------------------------------------------

TEST(Serve, RequestStopMidFlightReturnsPrefixWithoutDeadlock)
{
    auto opts = base_server_options();
    opts.worker_threads = 4;
    serve::Server *handle = nullptr;
    std::atomic<int> sampled{0};
    opts.sample_hook = [&](int64_t) {
        if (sampled.fetch_add(1) == 32)
            handle->request_stop();
    };
    serve::Server server(products(), opts);
    handle = &server;
    const auto trace = make_trace(server, 5000.0, 512);

    const auto responses = server.serve(trace); // must return, not hang
    const serve::ServingStats st = server.last_stats();
    EXPECT_TRUE(st.stopped_early);
    EXPECT_TRUE(server.stop_requested());
    EXPECT_LT(st.offered, 512);
    ASSERT_EQ(responses.size(), 512u);
    // The unprocessed suffix is marked as such.
    EXPECT_EQ(responses.back().outcome, serve::Outcome::kUnprocessed);

    // A fresh serve() after the stop runs to completion.
    sampled.store(1 << 20);
    server.serve(trace);
    EXPECT_FALSE(server.last_stats().stopped_early);
    EXPECT_EQ(server.last_stats().offered, 512);
}

TEST(Serve, WorkerExceptionPropagatesToCaller)
{
    auto opts = base_server_options();
    opts.worker_threads = 3;
    opts.sample_hook = [](int64_t id) {
        if (id == 40)
            throw std::runtime_error("sampler worker died");
    };
    serve::Server server(products(), opts);
    const auto trace = make_trace(server, 5000.0, 128);
    EXPECT_THROW(server.serve(trace), std::runtime_error);
}

// ---------------------------------------------------------------------
// DrrScheduler
// ---------------------------------------------------------------------

TEST(DrrScheduler, EqualCostsAlternateRoundRobin)
{
    serve::DrrScheduler drr(2, 1.0);
    const std::vector<char> ready = {1, 1};
    const std::vector<double> cost = {1.0, 1.0};
    EXPECT_EQ(drr.pick(ready, cost), 0u);
    EXPECT_EQ(drr.pick(ready, cost), 1u);
    EXPECT_EQ(drr.pick(ready, cost), 0u);
    EXPECT_EQ(drr.pick(ready, cost), 1u);
}

TEST(DrrScheduler, CheapTierIsNotStarvedByExpensiveOne)
{
    // Tier 0's batches cost 10x tier 1's. DRR grants equal *service
    // time*, so tier 1 must dispatch about 10x as often — a cheap GCN
    // tier is never starved behind an expensive GAT tier.
    serve::DrrScheduler drr(2, 1e-3);
    const std::vector<char> ready = {1, 1};
    const std::vector<double> cost = {10e-3, 1e-3};
    int picks[2] = {0, 0};
    for (int i = 0; i < 440; ++i)
        ++picks[drr.pick(ready, cost)];
    ASSERT_GT(picks[0], 0);
    ASSERT_GT(picks[1], 0);
    const double ratio = double(picks[1]) / double(picks[0]);
    EXPECT_GT(ratio, 8.0);
    EXPECT_LT(ratio, 12.5);
}

TEST(DrrScheduler, OnlyReadyTiersAreEligibleAndResetClearsCredit)
{
    serve::DrrScheduler drr(3, 1.0);
    std::vector<char> ready = {0, 1, 0};
    const std::vector<double> cost = {1.0, 4.5, 1.0};
    // Only tier 1 is ready: it wins no matter the cost, accruing
    // quanta until its credit covers the batch (5 rounds here).
    EXPECT_EQ(drr.pick(ready, cost), 1u);
    EXPECT_DOUBLE_EQ(drr.deficit(1), 0.5); // leftover credit banked
    drr.reset(1);                          // ...until the queue empties
    EXPECT_DOUBLE_EQ(drr.deficit(1), 0.0);
}

TEST(DrrScheduler, SequenceIsDeterministic)
{
    const std::vector<char> ready = {1, 1, 1};
    const std::vector<double> cost = {3e-3, 1e-3, 2e-3};
    std::vector<size_t> a, b;
    for (int run = 0; run < 2; ++run) {
        serve::DrrScheduler drr(3, 1e-3);
        std::vector<size_t> &out = run == 0 ? a : b;
        for (int i = 0; i < 64; ++i)
            out.push_back(drr.pick(ready, cost));
    }
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------
// Server: priority classes
// ---------------------------------------------------------------------

std::vector<serve::InferenceRequest>
make_mixed_trace(const serve::Server &server, double rate_rps,
                 int64_t num_requests, double slo = 50e-3,
                 std::vector<double> model_mix = {})
{
    serve::LoadGeneratorOptions lopts;
    lopts.rate_rps = rate_rps;
    lopts.num_requests = num_requests;
    lopts.slo_deadline = slo;
    lopts.class_mix = {0.3, 0.4, 0.3};
    lopts.model_mix = std::move(model_mix);
    lopts.seed = 13;
    serve::LoadGenerator gen(server.popularity(), lopts);
    return gen.generate();
}

TEST(LoadGenerator, ClassAndModelMixesDoNotPerturbArrivalsOrTargets)
{
    std::vector<graph::NodeId> population(200);
    for (size_t i = 0; i < population.size(); ++i)
        population[i] = static_cast<graph::NodeId>(i);

    serve::LoadGeneratorOptions opts;
    opts.num_requests = 256;
    opts.seed = 21;
    serve::LoadGenerator plain(population, opts);

    opts.class_mix = {0.5, 0.3, 0.2};
    opts.model_mix = {0.6, 0.4};
    serve::LoadGenerator mixed(population, opts);

    const auto a = plain.generate();
    const auto b = mixed.generate();
    ASSERT_EQ(a.size(), b.size());
    int64_t priorities[serve::kNumPriorityClasses] = {0, 0, 0};
    int64_t tier1 = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        // The legacy trace replays bit-identically under any mix: class
        // and model draws live on their own RNG streams.
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].targets, b[i].targets);
        EXPECT_EQ(a[i].priority, serve::Priority::kStandard);
        EXPECT_EQ(a[i].model, 0);
        ++priorities[static_cast<size_t>(b[i].priority)];
        tier1 += b[i].model == 1 ? 1 : 0;
    }
    // All classes and both tiers are represented roughly per the mix.
    for (int64_t count : priorities)
        EXPECT_GT(count, 256 / 10);
    EXPECT_GT(tier1, 256 / 4);
    EXPECT_LT(tier1, 3 * 256 / 4);
}

TEST(Serve, BestEffortShedsStrictlyBeforePaidUnderOverload)
{
    // ~2x overload with default class weights {1.0, 0.75, 0.5}:
    // best-effort is refused once the pending queue is half full,
    // leaving headroom that keeps every paid request on time.
    auto opts = base_server_options();
    opts.admission.max_pending = 48;
    serve::Server server(products(), opts);
    const auto trace = make_mixed_trace(server, 40000.0, 768, 20e-3);
    server.serve(trace);
    const serve::ServingStats st = server.last_stats();

    const serve::PriorityClassStats &paid =
        st.per_class[static_cast<size_t>(serve::Priority::kPaid)];
    const serve::PriorityClassStats &std_cls =
        st.per_class[static_cast<size_t>(serve::Priority::kStandard)];
    const serve::PriorityClassStats &be = st.per_class[static_cast<
        size_t>(serve::Priority::kBestEffort)];
    ASSERT_GT(paid.offered, 0);
    ASSERT_GT(be.offered, 0);

    // The overload is real and the shedding is strictly ordered:
    // best-effort drops while paid loses nothing — not to the queue
    // bound, not to early drop, not to a blown deadline.
    EXPECT_GT(be.shed_queue, 0);
    EXPECT_EQ(paid.shed_queue, 0);
    EXPECT_EQ(paid.dropped_deadline, 0);
    EXPECT_EQ(paid.served_late, 0);
    EXPECT_EQ(paid.served, paid.offered);
    EXPECT_GE(be.shed_rate, std_cls.shed_rate);
    EXPECT_GE(std_cls.shed_rate, paid.shed_rate);
    // Per-class tallies partition the global ones.
    EXPECT_EQ(paid.offered + std_cls.offered + be.offered, st.offered);
    EXPECT_EQ(paid.served + std_cls.served + be.served, st.served);
    EXPECT_EQ(paid.shed_queue + std_cls.shed_queue + be.shed_queue,
              st.shed_queue);
}

TEST(Serve, EqualClassWeightsRestoreClasslessBehaviour)
{
    auto classless = base_server_options();
    classless.admission.class_weight = {1.0, 1.0, 1.0};
    classless.admission.deadline_headroom = {0.0, 0.0, 0.0};
    serve::Server server(products(), classless);
    const auto trace = make_mixed_trace(server, 120000.0, 512, 20e-3);
    server.serve(trace);
    const serve::ServingStats st = server.last_stats();
    // With equal weights every class faces the same bound; under the
    // same overload the shed rates no longer order strictly by class
    // (the mix is interleaved, so rates land close together).
    ASSERT_GT(st.shed_queue + st.dropped_deadline, 0);
    const double be_rate = st.per_class[2].shed_rate;
    const double paid_rate = st.per_class[0].shed_rate;
    EXPECT_LT(be_rate - paid_rate, 0.25);
}

// ---------------------------------------------------------------------
// Server: cache warmup
// ---------------------------------------------------------------------

match::WarmupTrace
degree_warmup(const graph::Dataset &ds)
{
    // A warmup trace shaped like training traffic: frequency = degree
    // (hot hubs dominate sampled subgraphs, as a Trainer recording
    // would show).
    match::WarmupTrace trace;
    const int64_t n = ds.graph.num_nodes();
    trace.frequencies.resize(static_cast<size_t>(n));
    for (int64_t u = 0; u < n; ++u)
        trace.frequencies[static_cast<size_t>(u)] = ds.graph.degree(u);
    return trace;
}

TEST(Serve, WarmupSeedsEmbeddingCacheAndLiftsHitRate)
{
    const double rate = 20000.0;
    const int64_t n = 512;

    auto cold_opts = base_server_options();
    serve::Server cold(products(), cold_opts);
    const auto trace = make_trace(cold, rate, n);
    cold.serve(trace);
    const serve::ServingStats cold_st = cold.last_stats();
    EXPECT_FALSE(cold.warmed());
    EXPECT_FALSE(cold_st.warmed);
    EXPECT_EQ(cold_st.warmed_rows, 0);

    auto warm_opts = base_server_options();
    warm_opts.warmup = degree_warmup(products());
    serve::Server warm(products(), warm_opts);
    warm.serve(trace);
    const serve::ServingStats warm_st = warm.last_stats();

    EXPECT_TRUE(warm.warmed());
    EXPECT_TRUE(warm_st.warmed);
    EXPECT_EQ(warm_st.warmed_rows, warm.embedding_cache_rows());
    // The seeded rows answer the trace's hot prefix without compute:
    // strictly more embedding hits than the cold start, and no request
    // is worse off.
    EXPECT_GT(warm_st.embedding_hits, cold_st.embedding_hits);
    EXPECT_GT(warm_st.embedding_hit_rate, cold_st.embedding_hit_rate);
    EXPECT_GE(warm_st.served - warm_st.served_late,
              cold_st.served - cold_st.served_late);
    EXPECT_LE(warm_st.gpu_busy_seconds, cold_st.gpu_busy_seconds);
}

TEST(Serve, WarmedRunIsBitIdenticalAcrossRepeatsAndThreadCounts)
{
    auto opts = base_server_options();
    opts.worker_threads = 1;
    opts.warmup = degree_warmup(products());
    serve::Server reference(products(), opts);
    const auto trace = make_trace(reference, 3000.0, 256);
    reference.serve(trace);
    const serve::ServingStats ref = reference.last_stats();

    reference.serve(trace); // seeding happens identically per call
    expect_identical_serving(ref, reference.last_stats());

    opts.worker_threads = 8;
    serve::Server threaded(products(), opts);
    threaded.serve(trace);
    expect_identical_serving(ref, threaded.last_stats());
}

// ---------------------------------------------------------------------
// Server: multi-model tiers
// ---------------------------------------------------------------------

serve::ServerOptions
two_tier_options()
{
    auto opts = base_server_options();
    serve::ModelTier cheap;
    cheap.name = "gcn";
    cheap.model.type = compute::ModelType::kGcn;
    serve::ModelTier expensive;
    expensive.name = "gat";
    expensive.model.type = compute::ModelType::kGat;
    expensive.batcher.max_batch = 16;
    opts.models = {cheap, expensive};
    return opts;
}

TEST(Serve, TwoTierMixedPriorityBitIdenticalAcrossWorkerCounts)
{
    auto opts = two_tier_options();
    opts.worker_threads = 1;
    serve::Server reference_server(products(), opts);
    ASSERT_EQ(reference_server.num_models(), 2u);
    const auto trace = make_mixed_trace(reference_server, 4000.0, 384,
                                        50e-3, {0.7, 0.3});
    const auto reference = reference_server.serve(trace);
    const serve::ServingStats ref = reference_server.last_stats();
    EXPECT_GT(ref.served, 0);
    ASSERT_EQ(ref.per_model.size(), 2u);
    EXPECT_GT(ref.per_model[0].offered, 0);
    EXPECT_GT(ref.per_model[1].offered, 0);
    EXPECT_EQ(ref.per_model[0].offered + ref.per_model[1].offered,
              ref.offered);
    EXPECT_EQ(ref.per_model[0].name, "gcn");
    EXPECT_EQ(ref.per_model[1].name, "gat");

    for (int threads : {4, 8}) {
        auto topts = two_tier_options();
        topts.worker_threads = threads;
        serve::Server server(products(), topts);
        const auto responses = server.serve(trace);
        const serve::ServingStats st = server.last_stats();
        expect_identical_serving(ref, st);
        for (size_t m = 0; m < 2; ++m) {
            EXPECT_EQ(st.per_model[m].offered, ref.per_model[m].offered);
            EXPECT_EQ(st.per_model[m].served, ref.per_model[m].served);
            EXPECT_EQ(st.per_model[m].batches, ref.per_model[m].batches);
            EXPECT_EQ(st.per_model[m].gpu_busy_seconds,
                      ref.per_model[m].gpu_busy_seconds);
        }
        for (size_t c = 0; c < serve::kNumPriorityClasses; ++c) {
            EXPECT_EQ(st.per_class[c].served, ref.per_class[c].served);
            EXPECT_EQ(st.per_class[c].p99_latency,
                      ref.per_class[c].p99_latency);
        }
        ASSERT_EQ(responses.size(), reference.size());
        for (size_t i = 0; i < responses.size(); ++i) {
            EXPECT_EQ(responses[i].outcome, reference[i].outcome);
            EXPECT_EQ(responses[i].latency, reference[i].latency);
            EXPECT_EQ(responses[i].batch_id, reference[i].batch_id);
        }
    }
}

TEST(Serve, SingleModelTraceOnTwoTierServerUsesTierZeroOnly)
{
    serve::Server server(products(), two_tier_options());
    const auto trace = make_trace(server, 3000.0, 128); // model 0 only
    server.serve(trace);
    const serve::ServingStats st = server.last_stats();
    EXPECT_EQ(st.per_model[0].offered, 128);
    EXPECT_EQ(st.per_model[1].offered, 0);
    EXPECT_EQ(st.per_model[1].batches, 0);
    EXPECT_DOUBLE_EQ(st.per_model[1].gpu_busy_seconds, 0.0);
}

TEST(Serve, ExpensiveTierDoesNotStarveCheapTierOnSharedDevice)
{
    // Both tiers see sustained load; DRR grants equal modelled service
    // time, so the cheap GCN tier keeps dispatching next to the GAT
    // tier instead of queueing behind it.
    auto opts = two_tier_options();
    serve::Server server(products(), opts);
    const auto trace = make_mixed_trace(server, 30000.0, 768, 50e-3,
                                        {0.5, 0.5});
    server.serve(trace);
    const serve::ServingStats st = server.last_stats();
    ASSERT_GT(st.per_model[0].batches, 0);
    ASSERT_GT(st.per_model[1].batches, 0);
    // The cheap tier serves the bulk of its offered load.
    EXPECT_GT(
        double(st.per_model[0].served) / double(st.per_model[0].offered),
        0.5);
}

TEST(Serve, StatsAccountHostExecution)
{
    auto opts = base_server_options();
    opts.worker_threads = 2;
    serve::Server server(products(), opts);
    const auto trace = make_trace(server, 2000.0, 128);
    server.serve(trace);
    const serve::ServingStats st = server.last_stats();
    EXPECT_GT(st.wall_seconds, 0.0);
    EXPECT_GT(st.worker_sample_seconds.count(), 0);
    EXPECT_EQ(st.work_queue.pushed, 128u);
    EXPECT_LE(st.work_queue.max_depth, server.options().queue_depth);
    EXPECT_EQ(st.offered, 128);
    EXPECT_GT(st.throughput_rps, 0.0);
    EXPECT_GE(st.throughput_rps, st.goodput_rps);
}

} // namespace
} // namespace fastgl
