/**
 * @file
 * Tests for util::StageShutdown — the close-queues/join/drain idiom
 * extracted from core::AsyncPipeline and shared with serve::Server.
 * The load-bearing property: a request_stop() racing a running stage
 * graph closes every queue exactly once and never deadlocks, no matter
 * where the stages are blocked (full push, empty pop) when it lands.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/bounded_queue.h"
#include "util/shutdown.h"

namespace fastgl {
namespace {

TEST(StageShutdown, StartsUnstoppedAndStopIsSticky)
{
    util::StageShutdown shutdown;
    EXPECT_FALSE(shutdown.stop_requested());
    shutdown.request_stop(); // no closer registered: just the flag
    EXPECT_TRUE(shutdown.stop_requested());
    shutdown.request_stop(); // idempotent
    EXPECT_TRUE(shutdown.stop_requested());
}

TEST(StageShutdown, BeginRunResetsTheFlagForTheNextRun)
{
    util::StageShutdown shutdown;
    shutdown.request_stop();
    ASSERT_TRUE(shutdown.stop_requested());

    // A stop that happened before the run began targeted no run; the
    // new run starts clean (AsyncPipeline epoch 2 after a stopped
    // epoch 1 must execute fully).
    int closes = 0;
    shutdown.begin_run([&closes] { ++closes; });
    EXPECT_FALSE(shutdown.stop_requested());
    EXPECT_EQ(closes, 0);

    shutdown.request_stop();
    EXPECT_TRUE(shutdown.stop_requested());
    EXPECT_EQ(closes, 1);
    shutdown.end_run();

    // After end_run the closer is gone; stopping is flag-only again.
    shutdown.request_stop();
    EXPECT_EQ(closes, 1);
}

TEST(StageShutdown, MidFlightStopUnblocksAllStagesWithoutDeadlock)
{
    // A two-stage graph wired like the pipelines: producers block on a
    // tiny full queue, consumers block on an empty one. request_stop()
    // from outside must unwedge every thread. The whole test runs
    // under a watchdog so a regression fails instead of hanging CI.
    util::BoundedQueue<int> work(1);
    util::BoundedQueue<int> done(1);
    util::StageShutdown shutdown;
    shutdown.begin_run([&work, &done] {
        work.close();
        done.close();
    });

    std::atomic<int> exited{0};
    std::vector<std::thread> stages;
    for (int i = 0; i < 3; ++i) {
        stages.emplace_back([&work, &shutdown, &exited] {
            // Producers: the queue holds one item, so all but the
            // first push block until the stop closes the queue.
            int item = 0;
            while (!shutdown.stop_requested()) {
                if (!work.push(item++))
                    break;
            }
            exited.fetch_add(1);
        });
    }
    for (int i = 0; i < 2; ++i) {
        stages.emplace_back([&done, &exited] {
            // Consumers of a queue nothing feeds: blocked in pop()
            // until close() drains them out with nullopt.
            while (done.pop())
                ;
            exited.fetch_add(1);
        });
    }

    // Let the stages actually reach their blocking calls.
    while (work.size() < work.capacity())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(exited.load(), 0) << "stages exited before the stop";

    shutdown.request_stop();

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (exited.load() < 5 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(exited.load(), 5) << "a stage is deadlocked after stop";
    for (std::thread &t : stages)
        t.join();
    EXPECT_TRUE(shutdown.stop_requested());
    shutdown.end_run();
}

TEST(StageShutdown, ConcurrentStopsCloseQueuesExactlyOnceSafely)
{
    // close() is idempotent on BoundedQueue, but the closer must still
    // be safe to invoke from many racing request_stop() calls.
    util::StageShutdown shutdown;
    std::atomic<int> closes{0};
    shutdown.begin_run([&closes] { closes.fetch_add(1); });

    std::vector<std::thread> stoppers;
    for (int i = 0; i < 8; ++i)
        stoppers.emplace_back([&shutdown] { shutdown.request_stop(); });
    for (std::thread &t : stoppers)
        t.join();
    EXPECT_TRUE(shutdown.stop_requested());
    // Every stop ran the closer (stop is level- not edge-triggered);
    // the closer itself must tolerate that, as queue close() does.
    EXPECT_GE(closes.load(), 1);
    shutdown.end_run();
}

} // namespace
} // namespace fastgl
