/**
 * @file
 * Tests for the set-associative LRU cache simulator.
 */
#include <gtest/gtest.h>

#include "sim/cache_model.h"

namespace fastgl {
namespace {

TEST(CacheModel, ColdMissThenHit)
{
    sim::CacheModel cache(1024, 64, 2);
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_TRUE(cache.access(63)); // same line
    EXPECT_FALSE(cache.access(64)); // next line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(CacheModel, LruEvictsOldest)
{
    // 2-way, line 64: one set when capacity = 128.
    sim::CacheModel cache(128, 64, 2);
    cache.access(0 * 128);   // set 0 (only set), way A
    cache.access(1 * 128);   // way B  (note: 128B stride keeps set 0)
    cache.access(0 * 128);   // touch A (A newer than B)
    cache.access(2 * 128);   // evicts B
    EXPECT_TRUE(cache.access(0 * 128));  // A still resident
    EXPECT_FALSE(cache.access(1 * 128)); // B was evicted
}

TEST(CacheModel, FullyAssociativeHoldsWorkingSet)
{
    sim::CacheModel cache(64 * 8, 64, 8); // one set, 8 ways
    for (uint64_t i = 0; i < 8; ++i)
        cache.access(i * 64);
    for (uint64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(cache.access(i * 64));
}

TEST(CacheModel, ThrashingWorkingSetMissesEverything)
{
    sim::CacheModel cache(64 * 4, 64, 4); // holds 4 lines
    // Cyclic access to 8 lines with LRU: always miss after warmup.
    for (int round = 0; round < 4; ++round) {
        for (uint64_t i = 0; i < 8; ++i)
            cache.access(i * 64);
    }
    EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

TEST(CacheModel, AccessRangeTouchesEveryLine)
{
    sim::CacheModel cache(1 << 16, 64, 4);
    cache.access_range(10, 300); // spans lines 0..4
    EXPECT_EQ(cache.accesses(), 5u);
    EXPECT_EQ(cache.misses(), 5u);
    cache.access_range(10, 300);
    EXPECT_EQ(cache.hits(), 5u);
}

TEST(CacheModel, AccessRangeZeroBytesIsNoop)
{
    sim::CacheModel cache(1 << 16, 64, 4);
    cache.access_range(0, 0);
    EXPECT_EQ(cache.accesses(), 0u);
}

TEST(CacheModel, ResetClearsContentsAndCounters)
{
    sim::CacheModel cache(1024, 64, 2);
    cache.access(0);
    cache.reset();
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_FALSE(cache.access(0)); // cold again
}

TEST(CacheHierarchy, L2CatchesL1Misses)
{
    sim::CacheHierarchy hier(sim::CacheModel(128, 64, 2),
                             sim::CacheModel(1 << 14, 64, 4));
    // Working set of 8 lines: too big for L1 (2 lines), fits L2.
    for (int round = 0; round < 3; ++round) {
        for (uint64_t i = 0; i < 8; ++i)
            hier.access(i * 64);
    }
    EXPECT_LT(hier.l1().hit_rate(), 0.2);
    EXPECT_GT(hier.l2().hit_rate(), 0.5);
}

TEST(CacheHierarchy, L1HitDoesNotTouchL2)
{
    sim::CacheHierarchy hier(sim::CacheModel(1024, 64, 2),
                             sim::CacheModel(1 << 14, 64, 4));
    hier.access(0);
    hier.access(0);
    EXPECT_EQ(hier.l2().accesses(), 1u); // only the first (miss)
}

/** Property sweep: hit rate bounded and monotone-ish in capacity. */
class CacheCapacityProperty : public ::testing::TestWithParam<int> {};

TEST_P(CacheCapacityProperty, HitRateWithinBounds)
{
    sim::CacheModel cache(uint64_t(GetParam()) * 1024, 128, 8);
    // Strided + repeated access pattern.
    for (uint64_t i = 0; i < 4000; ++i)
        cache.access((i * 384) % (256 * 1024));
    EXPECT_GE(cache.hit_rate(), 0.0);
    EXPECT_LE(cache.hit_rate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacityProperty,
                         ::testing::Values(4, 16, 64, 256));

TEST(CacheHierarchy, LargerL1CapacityNeverHurtsHitRate)
{
    auto run = [](uint64_t l1_bytes) {
        sim::CacheModel cache(l1_bytes, 64, 8);
        for (uint64_t i = 0; i < 20000; ++i)
            cache.access((i * 192) % (1 << 16));
        return cache.hit_rate();
    };
    const double small = run(4 << 10);
    const double large = run(64 << 10);
    EXPECT_GE(large + 1e-9, small);
}

} // namespace
} // namespace fastgl
