/**
 * @file
 * Tests for the device model: GpuSpec bandwidth math, PCIe link, device
 * memory ledger, kernel cost model, roofline.
 */
#include <gtest/gtest.h>

#include "sim/device_memory.h"
#include "sim/gpu_spec.h"
#include "sim/kernel_model.h"
#include "sim/pcie_link.h"
#include "sim/roofline.h"

namespace fastgl {
namespace {

TEST(GpuSpec, DefaultsMatchPaperTable3)
{
    const sim::GpuSpec spec = sim::rtx3090();
    EXPECT_DOUBLE_EQ(spec.peak_flops, 29.155e12);
    EXPECT_DOUBLE_EQ(spec.global_bw, 938e9);
    EXPECT_DOUBLE_EQ(spec.l1_bw, 12e12);
    EXPECT_EQ(spec.global_bytes, 24ull << 30);
    EXPECT_EQ(spec.l2_bytes, 6ull << 20);
    EXPECT_EQ(spec.l1_bytes_per_sm, 128ull << 10);
    EXPECT_DOUBLE_EQ(spec.pcie_bw, 32e9);
}

TEST(GpuSpec, EffectiveBandwidthBounds)
{
    const sim::GpuSpec spec = sim::rtx3090();
    // All-miss: pure global bandwidth. All-hit: pure L1 bandwidth.
    EXPECT_NEAR(spec.effective_bandwidth(0.0, 0.0), spec.global_bw, 1e-3);
    EXPECT_NEAR(spec.effective_bandwidth(1.0, 0.0), spec.l1_bw, 1e-3);
    // More hits → more bandwidth.
    EXPECT_GT(spec.effective_bandwidth(0.5, 0.5),
              spec.effective_bandwidth(0.1, 0.1));
}

TEST(GpuSpec, GraceHopperHasFatHostLink)
{
    EXPECT_GT(sim::grace_hopper_like().pcie_bw, 10 * sim::rtx3090().pcie_bw);
    EXPECT_LT(sim::rtx3090_pcie3().pcie_bw, sim::rtx3090().pcie_bw);
}

TEST(PcieLink, TransferTimeIsLatencyPlusBandwidth)
{
    const sim::GpuSpec spec = sim::rtx3090();
    sim::PcieLink link(spec);
    const double t = link.transfer(32'000'000'000ull); // 32 GB at 32 GB/s
    EXPECT_NEAR(t, 1.0 + spec.pcie_latency, 1e-6);
    EXPECT_EQ(link.transfers(), 1u);
    EXPECT_EQ(link.total_bytes(), 32'000'000'000ull);
    link.reset();
    EXPECT_EQ(link.transfers(), 0u);
}

TEST(PcieLink, EstimateDoesNotRecord)
{
    sim::PcieLink link(sim::rtx3090());
    link.estimate(1000);
    EXPECT_EQ(link.transfers(), 0u);
}

TEST(DeviceMemory, LedgerTracksAllocations)
{
    sim::DeviceMemory mem(sim::rtx3090());
    EXPECT_TRUE(mem.allocate("features", 1 << 30));
    EXPECT_TRUE(mem.allocate("features", 1 << 30));
    EXPECT_EQ(mem.tag_bytes("features"), 2ull << 30);
    EXPECT_EQ(mem.used(), 2ull << 30);
    EXPECT_EQ(mem.remaining(), (24ull - 2) << 30);
    mem.free_tag("features");
    EXPECT_EQ(mem.used(), 0u);
    EXPECT_EQ(mem.peak(), 2ull << 30);
}

TEST(DeviceMemory, RejectsOverCapacity)
{
    sim::DeviceMemory mem(sim::rtx3090());
    EXPECT_FALSE(mem.allocate("huge", 25ull << 30));
    EXPECT_EQ(mem.used(), 0u);
    EXPECT_TRUE(mem.allocate("ok", 20ull << 30));
    EXPECT_FALSE(mem.allocate("more", 5ull << 30));
}

TEST(DeviceMemory, ResizeAdjustsExactly)
{
    sim::DeviceMemory mem(sim::rtx3090());
    ASSERT_TRUE(mem.allocate("cache", 4ull << 30));
    EXPECT_TRUE(mem.resize("cache", 1ull << 30));
    EXPECT_EQ(mem.used(), 1ull << 30);
    EXPECT_TRUE(mem.resize("cache", 0));
    EXPECT_EQ(mem.tag_bytes("cache"), 0u);
}

TEST(KernelModel, MemoryAwareBeatsNaiveAggregation)
{
    const sim::KernelModel model{sim::rtx3090()};
    sim::AggregationWorkload w;
    w.num_targets = 8000;
    w.num_edges = 8000 * 12;
    w.feature_dim = 256;
    const auto naive = model.aggregation_naive(w, 0.044, 0.196);
    const auto aware = model.aggregation_memory_aware(
        w, sim::BlockGeometry{}, 12.0, 0.044, 0.196);
    EXPECT_GT(naive.seconds, aware.seconds);
    // Paper Fig. 11/12: the gain is roughly 1.1x-6.7x.
    EXPECT_LT(naive.seconds / aware.seconds, 10.0);
    EXPECT_GT(naive.seconds / aware.seconds, 1.1);
}

TEST(KernelModel, MemoryAwareFallsBackWhenSharedOverflows)
{
    const sim::KernelModel model{sim::rtx3090()};
    sim::AggregationWorkload w;
    w.num_targets = 100;
    w.num_edges = 100 * 50000; // enormous average degree
    w.feature_dim = 64;
    const auto naive = model.aggregation_naive(w, 0.05, 0.2);
    const auto aware = model.aggregation_memory_aware(
        w, sim::BlockGeometry{}, 50000.0, 0.05, 0.2);
    EXPECT_DOUBLE_EQ(naive.seconds, aware.seconds);
}

TEST(KernelModel, BlockGeometryRespectsThreadLimit)
{
    sim::BlockGeometry geometry; // paper's X=8, Y=32
    EXPECT_EQ(geometry.threads(), 256);
    EXPECT_LE(geometry.threads(), sim::rtx3090().max_threads_per_block);
    // 4XY + 4X|N| bytes.
    EXPECT_EQ(geometry.shared_bytes(10.0), 4u * 8 * 32 + 4u * 8 * 10);
}

TEST(KernelModel, FusedIdMapBeatsSyncByPaperRatio)
{
    const sim::KernelModel model{sim::rtx3090()};
    sim::IdMapWorkload w;
    w.instances = 7'000'000;
    w.uniques = 1'500'000;
    w.probes = 8'000'000;
    const double sync = model.id_map_sync(w);
    const double fused = model.id_map_fused(w);
    EXPECT_GT(sync, fused);
    // Paper Table 8 reports 2.1x-2.7x.
    EXPECT_GT(sync / fused, 1.8);
    EXPECT_LT(sync / fused, 3.2);
}

TEST(KernelModel, CpuSamplingFarSlowerThanGpu)
{
    const sim::KernelModel model{sim::rtx3090()};
    const int64_t edges = 10'000'000;
    EXPECT_GT(model.sample_cpu(edges) / model.sample_gpu(edges), 20.0);
}

TEST(KernelModel, GemmScalesWithFlops)
{
    const sim::KernelModel model{sim::rtx3090()};
    const auto small = model.gemm(1000, 64, 64);
    const auto large = model.gemm(8000, 64, 64);
    EXPECT_GT(large.seconds, small.seconds);
    EXPECT_DOUBLE_EQ(large.flops, 2.0 * 8000 * 64 * 64);
}

TEST(KernelModel, AllreduceZeroForSingleGpu)
{
    const sim::KernelModel model{sim::rtx3090()};
    EXPECT_DOUBLE_EQ(model.allreduce(1 << 20, 1), 0.0);
    EXPECT_GT(model.allreduce(1 << 20, 2), 0.0);
    EXPECT_GT(model.allreduce(1 << 20, 8), model.allreduce(1 << 20, 2));
}

TEST(Roofline, RidgeAndAttainable)
{
    sim::Roofline roofline(sim::rtx3090());
    const double ridge = roofline.ridge_intensity();
    EXPECT_NEAR(ridge, 29.155e12 / 938e9, 1e-6);
    // Below ridge: bandwidth bound; above: compute bound.
    EXPECT_LT(roofline.attainable_gflops(ridge / 10),
              29.155e3 / 10 * 1.01);
    EXPECT_NEAR(roofline.attainable_gflops(ridge * 100), 29155.0, 1.0);
}

TEST(Roofline, PointEfficiencyBounded)
{
    sim::Roofline roofline(sim::rtx3090());
    sim::KernelCost cost;
    cost.flops = 1e9;
    cost.bytes = 6e9;
    cost.seconds = 0.01;
    const auto point = roofline.add("agg", cost);
    EXPECT_GT(point.arithmetic_intensity, 0.0);
    EXPECT_GT(point.efficiency(), 0.0);
    EXPECT_LE(point.efficiency(), 1.0);
    EXPECT_EQ(roofline.points().size(), 1u);
}

} // namespace
} // namespace fastgl
