/**
 * @file
 * Tests for the dense tensor and kernels: GEMM variants against a naive
 * reference, bias, activations forward/backward.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "compute/ops.h"
#include "compute/tensor.h"
#include "util/rng.h"

namespace fastgl {
namespace {

using compute::Tensor;

Tensor
random_tensor(int64_t r, int64_t c, uint64_t seed)
{
    util::Rng rng(seed);
    return Tensor::randn(r, c, rng, 1.0f);
}

/** Reference GEMM with explicit transpose flags. */
Tensor
ref_gemm(const Tensor &a, const Tensor &b, bool ta, bool tb)
{
    const int64_t m = ta ? a.cols() : a.rows();
    const int64_t k = ta ? a.rows() : a.cols();
    const int64_t n = tb ? b.rows() : b.cols();
    Tensor c(m, n);
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (int64_t p = 0; p < k; ++p) {
                const float av = ta ? a.at(p, i) : a.at(i, p);
                const float bv = tb ? b.at(j, p) : b.at(p, j);
                acc += av * bv;
            }
            c.at(i, j) = acc;
        }
    }
    return c;
}

void
expect_close(const Tensor &x, const Tensor &y, float tol = 1e-4f)
{
    ASSERT_TRUE(x.same_shape(y));
    for (int64_t i = 0; i < x.rows(); ++i) {
        for (int64_t j = 0; j < x.cols(); ++j)
            ASSERT_NEAR(x.at(i, j), y.at(i, j), tol)
                << "at (" << i << "," << j << ")";
    }
}

TEST(Tensor, ZeroConstruction)
{
    Tensor t(3, 4);
    EXPECT_EQ(t.rows(), 3);
    EXPECT_EQ(t.cols(), 4);
    EXPECT_EQ(t.numel(), 12);
    for (int64_t i = 0; i < 3; ++i)
        for (int64_t j = 0; j < 4; ++j)
            EXPECT_FLOAT_EQ(t.at(i, j), 0.0f);
}

TEST(Tensor, FillAndAddScaled)
{
    Tensor a(2, 2), b(2, 2);
    a.fill(1.0f);
    b.fill(2.0f);
    a.add_scaled(b, 0.5f);
    EXPECT_FLOAT_EQ(a.at(1, 1), 2.0f);
    EXPECT_DOUBLE_EQ(a.sum_squares(), 16.0);
}

TEST(Tensor, RowSpanWritesThrough)
{
    Tensor t(2, 3);
    t.row(1)[2] = 5.0f;
    EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
}

/** GEMM variants, parameterized over shapes. */
struct GemmShape { int64_t m, k, n; };
class GemmProperty : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmProperty, MatchesReference)
{
    const auto [m, k, n] = GetParam();
    Tensor a = random_tensor(m, k, 1);
    Tensor b = random_tensor(k, n, 2);
    Tensor c(m, n);
    compute::gemm(a, b, c);
    expect_close(c, ref_gemm(a, b, false, false));
}

TEST_P(GemmProperty, TransposedAMatchesReference)
{
    const auto [m, k, n] = GetParam();
    Tensor a = random_tensor(k, m, 3); // stored transposed
    Tensor b = random_tensor(k, n, 4);
    Tensor c(m, n);
    compute::gemm_ta(a, b, c);
    expect_close(c, ref_gemm(a, b, true, false));
}

TEST_P(GemmProperty, TransposedBMatchesReference)
{
    const auto [m, k, n] = GetParam();
    Tensor a = random_tensor(m, k, 5);
    Tensor b = random_tensor(n, k, 6); // stored transposed
    Tensor c(m, n);
    compute::gemm_tb(a, b, c);
    expect_close(c, ref_gemm(a, b, false, true));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmProperty,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{3, 5, 2},
                      GemmShape{16, 8, 16}, GemmShape{33, 7, 19}));

TEST(Ops, AddBiasBroadcastsRow)
{
    Tensor x(2, 3);
    Tensor bias(1, 3);
    bias.at(0, 0) = 1;
    bias.at(0, 2) = -2;
    compute::add_bias(x, bias);
    EXPECT_FLOAT_EQ(x.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(x.at(1, 2), -2.0f);
    EXPECT_FLOAT_EQ(x.at(1, 1), 0.0f);
}

TEST(Ops, BiasBackwardIsColumnSum)
{
    Tensor grad(3, 2);
    grad.fill(1.0f);
    grad.at(0, 1) = 4.0f;
    Tensor gb(1, 2);
    compute::bias_backward(grad, gb);
    EXPECT_FLOAT_EQ(gb.at(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(gb.at(0, 1), 6.0f);
}

TEST(Ops, ReluForwardBackward)
{
    Tensor x(1, 4);
    x.at(0, 0) = -1;
    x.at(0, 1) = 2;
    x.at(0, 2) = 0;
    x.at(0, 3) = -3;
    Tensor activated = x;
    compute::relu_forward(activated);
    EXPECT_FLOAT_EQ(activated.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(activated.at(0, 1), 2.0f);

    Tensor grad(1, 4);
    grad.fill(1.0f);
    compute::relu_backward(activated, grad);
    EXPECT_FLOAT_EQ(grad.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(grad.at(0, 1), 1.0f);
    EXPECT_FLOAT_EQ(grad.at(0, 2), 0.0f);
}

TEST(Ops, LeakyReluForwardBackward)
{
    Tensor pre(1, 2);
    pre.at(0, 0) = -2.0f;
    pre.at(0, 1) = 3.0f;
    Tensor x = pre;
    compute::leaky_relu_forward(x, 0.1f);
    EXPECT_FLOAT_EQ(x.at(0, 0), -0.2f);
    EXPECT_FLOAT_EQ(x.at(0, 1), 3.0f);

    Tensor grad(1, 2);
    grad.fill(1.0f);
    compute::leaky_relu_backward(pre, 0.1f, grad);
    EXPECT_FLOAT_EQ(grad.at(0, 0), 0.1f);
    EXPECT_FLOAT_EQ(grad.at(0, 1), 1.0f);
}

TEST(Ops, EluForwardBackward)
{
    Tensor x(1, 2);
    x.at(0, 0) = -1.0f;
    x.at(0, 1) = 2.0f;
    Tensor activated = x;
    compute::elu_forward(activated);
    EXPECT_NEAR(activated.at(0, 0), std::expm1(-1.0f), 1e-6);
    EXPECT_FLOAT_EQ(activated.at(0, 1), 2.0f);

    Tensor grad(1, 2);
    grad.fill(1.0f);
    compute::elu_backward(activated, grad);
    // dELU = e^x = y + 1 on the negative branch.
    EXPECT_NEAR(grad.at(0, 0), std::exp(-1.0f), 1e-6);
    EXPECT_FLOAT_EQ(grad.at(0, 1), 1.0f);
}

} // namespace
} // namespace fastgl
