/**
 * @file
 * Edge-case tests for util::ThreadPool: value-returning submit,
 * exception propagation through futures (the pool must survive a
 * throwing task), and parallel_for boundary conditions.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace fastgl {
namespace {

TEST(ThreadPoolSubmit, ReturnsTaskValueThroughFuture)
{
    util::ThreadPool pool(2);
    std::future<int> answer = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(answer.get(), 42);

    std::future<std::string> text =
        pool.submit([] { return std::string("overlap"); });
    EXPECT_EQ(text.get(), "overlap");
}

TEST(ThreadPoolSubmit, ExceptionSurfacesViaFutureNotTerminate)
{
    util::ThreadPool pool(2);
    std::future<void> bad =
        pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(bad.get(), std::runtime_error);

    // The pool must still be alive and able to run further tasks.
    std::future<int> good = pool.submit([] { return 7; });
    EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolSubmit, ManyThrowingTasksDoNotKillWorkers)
{
    util::ThreadPool pool(3);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i) {
        futures.push_back(pool.submit(
            [i] { if (i % 2 == 0) throw std::runtime_error("even"); }));
    }
    int threw = 0;
    for (auto &f : futures) {
        try {
            f.get();
        } catch (const std::runtime_error &) {
            ++threw;
        }
    }
    EXPECT_EQ(threw, 16);
    EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolParallelFor, CountZeroIsNoop)
{
    util::ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallel_for(0, [&](size_t, size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolParallelFor, CountSmallerThanWorkersCoversAllOnce)
{
    util::ThreadPool pool(8);
    std::vector<std::atomic<int>> touched(3);
    pool.parallel_for(3, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            touched[i].fetch_add(1);
    });
    for (const auto &t : touched)
        EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolParallelFor, LargeRangePartitionIsExact)
{
    util::ThreadPool pool(4);
    constexpr size_t kCount = 10007; // prime: uneven chunking
    std::vector<std::atomic<int>> touched(kCount);
    pool.parallel_for(kCount, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            touched[i].fetch_add(1);
    });
    for (size_t i = 0; i < kCount; ++i)
        ASSERT_EQ(touched[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolParallelFor, ThrowingChunkSurfacesHereAndPoolSurvives)
{
    util::ThreadPool pool(4);
    std::atomic<int> completed{0};
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](size_t begin, size_t end) {
                              if (begin == 0)
                                  throw std::runtime_error("chunk died");
                              completed.fetch_add(int(end - begin));
                          }),
        std::runtime_error);
    // The non-throwing chunks all ran to completion (75 of 100 items).
    EXPECT_EQ(completed.load(), 75);
    // And the pool still works.
    EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPoolParallelFor, SingleWorkerPoolStillPartitions)
{
    util::ThreadPool pool(1);
    std::vector<int> touched(64, 0);
    pool.parallel_for(64, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            ++touched[i];
    });
    EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 64);
}

TEST(ThreadPool, PendingCountDrainsToZero)
{
    util::ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(pool.submit([] {}));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(pool.pending(), 0u);
}

} // namespace
} // namespace fastgl
