/**
 * @file
 * Tests for the discrete-event scheduler and the epoch timeline: the
 * event-driven makespans must reproduce the closed-form overlap math the
 * Pipeline uses (serial sums, hidden transfers, sampler dedication).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/timeline.h"
#include "sim/task_schedule.h"

namespace fastgl {
namespace {

TEST(TaskSchedule, SequentialOnOneResource)
{
    sim::TaskSchedule schedule;
    const int r = schedule.add_resource("stream");
    schedule.add_task(r, 1.0, {});
    schedule.add_task(r, 2.0, {});
    schedule.add_task(r, 3.0, {});
    EXPECT_DOUBLE_EQ(schedule.run(), 6.0);
    EXPECT_DOUBLE_EQ(schedule.timings()[1].start, 1.0);
    EXPECT_DOUBLE_EQ(schedule.timings()[2].finish, 6.0);
}

TEST(TaskSchedule, IndependentResourcesRunConcurrently)
{
    sim::TaskSchedule schedule;
    const int a = schedule.add_resource("a");
    const int b = schedule.add_resource("b");
    schedule.add_task(a, 5.0, {});
    schedule.add_task(b, 3.0, {});
    EXPECT_DOUBLE_EQ(schedule.run(), 5.0);
}

TEST(TaskSchedule, DependenciesDelayStart)
{
    sim::TaskSchedule schedule;
    const int a = schedule.add_resource("a");
    const int b = schedule.add_resource("b");
    const int t0 = schedule.add_task(a, 2.0, {});
    const int t1 = schedule.add_task(b, 1.0, {t0});
    schedule.add_task(a, 1.0, {t1});
    EXPECT_DOUBLE_EQ(schedule.run(), 4.0); // 2 -> 1 -> 1 chained
}

TEST(TaskSchedule, ChromeTraceExports)
{
    sim::TaskSchedule schedule;
    const int r = schedule.add_resource("gpu");
    schedule.add_task(r, 0.001, {}, "work");
    schedule.run();
    const std::string path = "/tmp/fastgl_trace_test.json";
    ASSERT_TRUE(schedule.write_chrome_trace(path));
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(content.find("\"work\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(TaskSchedule, TraceBeforeRunFails)
{
    sim::TaskSchedule schedule;
    schedule.add_resource("r");
    EXPECT_FALSE(schedule.write_chrome_trace("/tmp/never.json"));
}

TEST(TaskSchedule, RejectsForwardDependencies)
{
    sim::TaskSchedule schedule;
    const int r = schedule.add_resource("r");
    EXPECT_DEATH(schedule.add_task(r, 1.0, {5}),
                 "dependency on a later/unknown task");
}

// ---- Epoch timelines ----

std::vector<core::BatchStageTimes>
uniform_batches(int n, double sample, double io, double compute)
{
    return std::vector<core::BatchStageTimes>(
        size_t(n), core::BatchStageTimes{sample, io, compute});
}

TEST(Timeline, SerialFrameworkMakespanIsTheSum)
{
    // DGL/PyG: no overlap -> makespan == n * (s + io + c).
    const auto batches = uniform_batches(8, 1.0, 2.0, 3.0);
    core::TimelineConfig config; // all overlap off
    const auto result = core::simulate_epoch(batches, config);
    EXPECT_DOUBLE_EQ(result.makespan, 8.0 * 6.0);
}

TEST(Timeline, DoubleBufferingHidesTransfers)
{
    // With copy/compute overlap and a dedicated sampler, steady state is
    // paced by the compute stream: makespan ~ s + io + n*c.
    const auto batches = uniform_batches(10, 0.5, 1.0, 3.0);
    core::TimelineConfig config;
    config.overlap_copy_compute = true;
    config.dedicated_sampler = true;
    const auto result = core::simulate_epoch(batches, config);
    EXPECT_NEAR(result.makespan, 0.5 + 1.0 + 10 * 3.0, 1e-9);
    // Strictly better than serial.
    EXPECT_LT(result.makespan, 10 * 4.5);
}

TEST(Timeline, BottleneckStagePacesThePipeline)
{
    // When io dominates, the pipeline is paced by the copy stream.
    const auto batches = uniform_batches(10, 0.2, 5.0, 1.0);
    core::TimelineConfig config;
    config.overlap_copy_compute = true;
    config.dedicated_sampler = true;
    const auto result = core::simulate_epoch(batches, config);
    EXPECT_NEAR(result.makespan, 0.2 + 10 * 5.0 + 1.0, 1e-9);
}

TEST(Timeline, DedicatedSamplerHidesSampling)
{
    const auto slow_sample = uniform_batches(10, 2.0, 0.5, 2.0);
    core::TimelineConfig on_device; // sampling serializes with compute
    const double serialized =
        core::simulate_epoch(slow_sample, on_device).makespan;
    core::TimelineConfig dedicated;
    dedicated.dedicated_sampler = true;
    dedicated.overlap_copy_compute = true;
    const double hidden =
        core::simulate_epoch(slow_sample, dedicated).makespan;
    EXPECT_LT(hidden, serialized);
    // Sampling (2.0/batch) matches compute (2.0/batch): compute-paced.
    EXPECT_NEAR(hidden, 2.0 + 0.5 + 10 * 2.0, 1e-9);
}

TEST(Timeline, AllreduceExtendsEveryIteration)
{
    const auto batches = uniform_batches(5, 1.0, 1.0, 1.0);
    core::TimelineConfig config;
    config.allreduce = 0.5;
    const auto with = core::simulate_epoch(batches, config).makespan;
    config.allreduce = 0.0;
    const auto without = core::simulate_epoch(batches, config).makespan;
    EXPECT_DOUBLE_EQ(with - without, 5 * 0.5);
}

TEST(Timeline, EmptyEpochIsZero)
{
    core::TimelineConfig config;
    EXPECT_DOUBLE_EQ(core::simulate_epoch({}, config).makespan, 0.0);
}

TEST(Timeline, TraceFileWritten)
{
    const auto batches = uniform_batches(3, 0.001, 0.002, 0.003);
    core::TimelineConfig config;
    config.overlap_copy_compute = true;
    const std::string path = "/tmp/fastgl_epoch_trace.json";
    const double makespan =
        core::simulate_epoch_to_trace(batches, config, path);
    EXPECT_GT(makespan, 0.0);
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
    std::remove(path.c_str());
}

} // namespace
} // namespace fastgl
