/**
 * @file
 * Tests for the numeric Trainer: real end-to-end training must reduce the
 * loss on the dataset replicas (the paper's Fig. 16 correctness claim).
 */
#include <gtest/gtest.h>

#include "core/trainer.h"
#include "graph/datasets.h"

namespace fastgl {
namespace {

graph::Dataset
tiny_reddit()
{
    graph::ReplicaOptions opts;
    opts.size_factor = 0.05;
    opts.materialize_features = true;
    return graph::load_replica(graph::DatasetId::kReddit, opts);
}

TEST(Trainer, LossDecreasesOverEpochsGcn)
{
    const graph::Dataset ds = tiny_reddit();
    core::TrainerOptions opts;
    opts.fanouts = {4, 4};
    opts.max_batches = 4;
    opts.batch_size = 32;
    core::Trainer trainer(ds, opts);

    const auto first = trainer.train_epoch();
    double last_loss = first.mean_loss;
    for (int e = 0; e < 4; ++e)
        last_loss = trainer.train_epoch().mean_loss;
    EXPECT_LT(last_loss, first.mean_loss);
}

TEST(Trainer, LossDecreasesOverEpochsGin)
{
    const graph::Dataset ds = tiny_reddit();
    core::TrainerOptions opts;
    opts.fanouts = {4, 4};
    opts.max_batches = 4;
    opts.batch_size = 32;
    opts.model.type = compute::ModelType::kGin;
    core::Trainer trainer(ds, opts);
    const auto first = trainer.train_epoch();
    double last_loss = first.mean_loss;
    for (int e = 0; e < 4; ++e)
        last_loss = trainer.train_epoch().mean_loss;
    EXPECT_LT(last_loss, first.mean_loss);
}

TEST(Trainer, ResolvesModelShapeFromDataset)
{
    const graph::Dataset ds = tiny_reddit();
    core::TrainerOptions opts;
    opts.fanouts = {3, 3};
    opts.max_batches = 1;
    opts.batch_size = 16;
    core::Trainer trainer(ds, opts);
    EXPECT_EQ(trainer.options().model.in_dim, ds.features.dim());
    EXPECT_EQ(trainer.options().model.num_classes,
              ds.features.num_classes());
    EXPECT_EQ(trainer.options().model.num_layers, 2);
}

TEST(Trainer, EvaluateReturnsValidAccuracy)
{
    const graph::Dataset ds = tiny_reddit();
    core::TrainerOptions opts;
    opts.fanouts = {3, 3};
    opts.max_batches = 2;
    opts.batch_size = 16;
    core::Trainer trainer(ds, opts);
    const double acc = trainer.evaluate(2);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

TEST(Trainer, IterationLossesRecorded)
{
    const graph::Dataset ds = tiny_reddit();
    core::TrainerOptions opts;
    opts.fanouts = {3, 3};
    opts.max_batches = 3;
    opts.batch_size = 16;
    core::Trainer trainer(ds, opts);
    const auto stats = trainer.train_epoch();
    EXPECT_EQ(stats.iteration_losses.size(), 3u);
    for (double loss : stats.iteration_losses)
        EXPECT_GT(loss, 0.0);
}

TEST(Trainer, SgdVariantAlsoLearns)
{
    const graph::Dataset ds = tiny_reddit();
    core::TrainerOptions opts;
    opts.fanouts = {4, 4};
    opts.max_batches = 4;
    opts.batch_size = 32;
    opts.use_adam = false;
    opts.learning_rate = 0.05f;
    core::Trainer trainer(ds, opts);
    const auto first = trainer.train_epoch();
    double last = first.mean_loss;
    for (int e = 0; e < 5; ++e)
        last = trainer.train_epoch().mean_loss;
    EXPECT_LT(last, first.mean_loss * 1.05);
}

TEST(Trainer, RecordsNodeFrequenciesForWarmup)
{
    const graph::Dataset ds = tiny_reddit();
    core::TrainerOptions opts;
    opts.fanouts = {4, 4};
    opts.max_batches = 3;
    opts.batch_size = 32;
    opts.record_node_frequencies = true;
    core::Trainer trainer(ds, opts);
    const auto stats = trainer.train_epoch();

    ASSERT_EQ(stats.node_frequencies.size(),
              static_cast<size_t>(ds.graph.num_nodes()));
    int64_t touched = 0, total = 0;
    for (int64_t f : stats.node_frequencies) {
        EXPECT_GE(f, 0);
        touched += f > 0 ? 1 : 0;
        total += f;
    }
    // Every sampled subgraph node counts once per appearance; three
    // batches of 32 seeds with fanouts {4,4} touch far more nodes than
    // seeds but not the whole graph replica.
    EXPECT_GT(touched, 3 * 32);
    EXPECT_LT(touched, ds.graph.num_nodes());
    EXPECT_GE(total, touched);

    // Same seed, fresh trainer: the recording is deterministic.
    core::Trainer again(ds, opts);
    EXPECT_EQ(again.train_epoch().node_frequencies,
              stats.node_frequencies);
}

TEST(Trainer, FrequencyRecordingOffByDefault)
{
    const graph::Dataset ds = tiny_reddit();
    core::TrainerOptions opts;
    opts.fanouts = {3, 3};
    opts.max_batches = 1;
    opts.batch_size = 16;
    core::Trainer trainer(ds, opts);
    EXPECT_TRUE(trainer.train_epoch().node_frequencies.empty());
}

} // namespace
} // namespace fastgl
