/**
 * @file
 * Unit tests for fastgl::util — RNG determinism/uniformity, statistics
 * accumulators, table rendering and the thread pool.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fastgl {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    util::Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    util::Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b())
            ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInRange)
{
    util::Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.next_below(bound), bound);
    }
}

TEST(Rng, NextBelowZeroBoundIsZero)
{
    util::Rng rng(7);
    EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform)
{
    util::Rng rng(99);
    constexpr int buckets = 10;
    constexpr int draws = 100000;
    int counts[buckets] = {};
    for (int i = 0; i < draws; ++i)
        ++counts[rng.next_below(buckets)];
    for (int c : counts) {
        EXPECT_GT(c, draws / buckets * 0.9);
        EXPECT_LT(c, draws / buckets * 1.1);
    }
}

TEST(Rng, NextDoubleInUnitInterval)
{
    util::Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.next_double();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, GaussianHasRoughlyUnitMoments)
{
    util::Rng rng(11);
    util::RunningStat stat;
    for (int i = 0; i < 20000; ++i)
        stat.add(rng.next_gaussian());
    EXPECT_NEAR(stat.mean(), 0.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream)
{
    util::Rng a(42);
    util::Rng b = a.split();
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b())
            ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(RunningStat, BasicMoments)
{
    util::RunningStat stat;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        stat.add(x);
    EXPECT_EQ(stat.count(), 5u);
    EXPECT_DOUBLE_EQ(stat.mean(), 3.0);
    EXPECT_DOUBLE_EQ(stat.min(), 1.0);
    EXPECT_DOUBLE_EQ(stat.max(), 5.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 2.5);
    EXPECT_DOUBLE_EQ(stat.sum(), 15.0);
}

TEST(RunningStat, EmptyIsZero)
{
    util::RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(SampleStat, ExactPercentiles)
{
    util::SampleStat stat;
    for (int i = 1; i <= 100; ++i)
        stat.add(i);
    EXPECT_DOUBLE_EQ(stat.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(stat.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(stat.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(stat.percentile(0), 1.0);
}

TEST(SampleStat, BulkPercentilesMatchScalarAccessor)
{
    util::SampleStat stat;
    util::Rng rng(99);
    for (int i = 0; i < 1000; ++i)
        stat.add(rng.next_double() * 1e3);

    const double ps[] = {0.0, 25.0, 50.0, 95.0, 99.0, 100.0};
    const std::vector<double> bulk = stat.percentiles(ps);
    ASSERT_EQ(bulk.size(), 6u);
    for (size_t i = 0; i < bulk.size(); ++i)
        EXPECT_DOUBLE_EQ(bulk[i], stat.percentile(ps[i]));
}

TEST(SampleStat, BulkPercentilesOnEmptyAreZero)
{
    util::SampleStat stat;
    const double ps[] = {50.0, 99.0};
    const std::vector<double> bulk = stat.percentiles(ps);
    ASSERT_EQ(bulk.size(), 2u);
    EXPECT_DOUBLE_EQ(bulk[0], 0.0);
    EXPECT_DOUBLE_EQ(bulk[1], 0.0);
}

TEST(SampleStat, MergeEqualsSingleAccumulator)
{
    // Per-thread accumulators merged afterwards must agree with one
    // accumulator that saw every sample (the ServingStats reduction).
    util::SampleStat whole, part_a, part_b, merged;
    for (int i = 1; i <= 100; ++i) {
        whole.add(i);
        (i % 2 ? part_a : part_b).add(i);
    }
    merged.merge(part_a);
    merged.merge(part_b);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_DOUBLE_EQ(merged.mean(), whole.mean());
    const double ps[] = {50.0, 95.0, 99.0};
    EXPECT_EQ(merged.percentiles(ps), whole.percentiles(ps));

    // Merging into a non-empty accumulator appends.
    part_a.merge(part_b);
    EXPECT_EQ(part_a.count(), whole.count());
    EXPECT_DOUBLE_EQ(part_a.percentile(50), whole.percentile(50));

    // Merging an empty accumulator is a no-op (stays sorted).
    util::SampleStat empty;
    const double before = merged.percentile(99);
    merged.merge(empty);
    EXPECT_DOUBLE_EQ(merged.percentile(99), before);
}

TEST(HumanFormat, Bytes)
{
    EXPECT_EQ(util::human_bytes(512), "512.00 B");
    EXPECT_EQ(util::human_bytes(2048), "2.00 KB");
    EXPECT_EQ(util::human_bytes(3.5 * 1024 * 1024), "3.50 MB");
}

TEST(HumanFormat, Seconds)
{
    EXPECT_EQ(util::human_seconds(2.5), "2.500 s");
    EXPECT_EQ(util::human_seconds(0.0025), "2.50 ms");
    EXPECT_EQ(util::human_seconds(2.5e-6), "2.50 us");
}

TEST(TextTable, RendersAlignedRows)
{
    util::TextTable table("demo");
    table.set_header({"a", "long-column"});
    table.add_row({"1", "2"});
    table.add_row({"333", "4"});
    const std::string out = table.to_string();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("long-column"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
    EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, CsvRoundTrip)
{
    util::TextTable table;
    table.set_header({"x", "y"});
    table.add_row({"1", "hello, world"});
    const std::string path = "/tmp/fastgl_table_test.csv";
    ASSERT_TRUE(table.write_csv(path));
    FILE *f = fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[256];
    ASSERT_NE(fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "x,y\n");
    ASSERT_NE(fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "1,\"hello, world\"\n");
    fclose(f);
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(util::TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(util::TextTable::num(2.0, 0), "2");
}

TEST(ThreadPool, RunsAllSubmittedTasks)
{
    util::ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    util::ThreadPool pool(4);
    std::vector<std::atomic<int>> touched(1000);
    pool.parallel_for(1000, [&touched](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            ++touched[i];
    });
    for (const auto &t : touched)
        EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop)
{
    util::ThreadPool pool(2);
    bool called = false;
    pool.parallel_for(0, [&called](size_t, size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(Timers, IntervalTimerAccumulates)
{
    util::IntervalTimer timer;
    timer.start();
    timer.stop();
    timer.start();
    timer.stop();
    EXPECT_EQ(timer.intervals(), 2u);
    EXPECT_GE(timer.total_seconds(), 0.0);
    timer.clear();
    EXPECT_EQ(timer.intervals(), 0u);
}

} // namespace
} // namespace fastgl
