#!/usr/bin/env bash
# CI entry point: configure from scratch, build, and run the full test
# suite. A FRESH build directory matters — gtest_discover_tests leaves a
# fastgl_tests_NOT_BUILT placeholder in stale CTest state, which then
# "fails" forever even though the tree is fine.
#
# Usage:
#   tools/ci.sh                 # warnings-as-errors build + full ctest
#   FASTGL_TSAN=1 tools/ci.sh   # additionally run the concurrency
#                               # suite under ThreadSanitizer
#
# Environment:
#   FASTGL_CI_JOBS   parallel build/test jobs (default: nproc)
#   FASTGL_TSAN      when 1, add a -fsanitize=thread configuration
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${FASTGL_CI_JOBS:-$(nproc)}"

run_config() {
    local dir="$1"
    shift
    rm -rf "$dir"
    cmake -B "$dir" -S . "$@"
    cmake --build "$dir" -j "$JOBS"
}

echo "==> primary configuration (tests built with -Werror)"
run_config build-ci -DFASTGL_TEST_WERROR=ON
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

if [[ "${FASTGL_TSAN:-0}" == "1" ]]; then
    echo "==> ThreadSanitizer configuration (concurrency suite)"
    run_config build-tsan -DFASTGL_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
        -R 'BoundedQueue|ThreadPool|AsyncPipeline|Determinism'
fi

echo "==> CI OK"
