#!/usr/bin/env bash
# CI entry point: configure from scratch, build, and run the full test
# suite. A FRESH build directory matters — gtest_discover_tests leaves a
# fastgl_tests_NOT_BUILT placeholder in stale CTest state, which then
# "fails" forever even though the tree is fine.
#
# Usage:
#   tools/ci.sh                 # warnings-as-errors build + full ctest
#   FASTGL_TSAN=1 tools/ci.sh   # additionally run the concurrency
#                               # suite under ThreadSanitizer
#
# Environment:
#   FASTGL_CI_JOBS   parallel build/test jobs (default: nproc)
#   FASTGL_TSAN      when 1, add a -fsanitize=thread configuration
#   FASTGL_NO_PERF   when 1, skip the hot-path perf smoke step
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${FASTGL_CI_JOBS:-$(nproc)}"

run_config() {
    local dir="$1"
    shift
    rm -rf "$dir"
    cmake -B "$dir" -S . "$@"
    cmake --build "$dir" -j "$JOBS"
}

echo "==> primary configuration (tests built with -Werror)"
run_config build-ci -DFASTGL_TEST_WERROR=ON
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

if [[ "${FASTGL_TSAN:-0}" == "1" ]]; then
    echo "==> ThreadSanitizer configuration (concurrency suite)"
    run_config build-tsan -DFASTGL_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
        -R 'BoundedQueue|ThreadPool|AsyncPipeline|Determinism|Serve|StageShutdown'
fi

if [[ "${FASTGL_NO_PERF:-0}" != "1" ]]; then
    # Perf smoke: Release build of the hot-path before/after benchmark,
    # archived as BENCH_hotpath.json. The step fails only when the
    # benchmark crashes or its legacy replicas diverge from the live
    # implementations (non-zero exit) — throughput numbers are recorded,
    # never gated, since CI machines are too noisy for thresholds.
    echo "==> hot-path perf smoke (Release)"
    if [[ ! -d build-perf-ci ]]; then
        cmake -B build-perf-ci -S . -DCMAKE_BUILD_TYPE=Release
    fi
    cmake --build build-perf-ci --target bench_ext_hotpath -j "$JOBS"
    ./build-perf-ci/bench/bench_ext_hotpath --smoke \
        | tee BENCH_hotpath.json

    # Serving smoke: sweep the online-inference server and archive the
    # latency/shedding table. The bench itself gates on its virtual-
    # clock invariants (batching+caches beat the baseline, shedding
    # engages under overload) — those are deterministic, so unlike
    # throughput they are safe to fail CI on. On top of that, check
    # the archive parses as JSON and every p99 came out finite.
    echo "==> serving smoke (Release)"
    cmake --build build-perf-ci --target bench_ext_serving -j "$JOBS"
    ./build-perf-ci/bench/bench_ext_serving --smoke \
        | tee BENCH_serving.json
    python3 -m json.tool BENCH_serving.json > /dev/null
    grep -q '"all_p99_finite": true' BENCH_serving.json
fi

echo "==> CI OK"
