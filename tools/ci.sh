#!/usr/bin/env bash
# CI entry point: configure from scratch, build, and run the full test
# suite. A FRESH build directory matters — gtest_discover_tests leaves a
# fastgl_tests_NOT_BUILT placeholder in stale CTest state, which then
# "fails" forever even though the tree is fine.
#
# Usage:
#   tools/ci.sh                 # warnings-as-errors build + full ctest
#   FASTGL_TSAN=1 tools/ci.sh   # additionally run the concurrency
#                               # suite under ThreadSanitizer
#
# Environment:
#   FASTGL_CI_JOBS   parallel build/test jobs (default: nproc)
#   FASTGL_TSAN      when 1, add a -fsanitize=thread configuration
#   FASTGL_NO_PERF   when 1, skip the hot-path perf smoke step
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${FASTGL_CI_JOBS:-$(nproc)}"

run_config() {
    local dir="$1"
    shift
    rm -rf "$dir"
    cmake -B "$dir" -S . "$@"
    cmake --build "$dir" -j "$JOBS"
}

echo "==> primary configuration (tests built with -Werror)"
run_config build-ci -DFASTGL_TEST_WERROR=ON
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

# Docs-consistency check: Doxygen in warnings-as-errors mode over the
# serve + compute + prof headers (docs/Doxyfile-ci), so @param lists
# that drift from the code fail CI. Skipped, loudly, where doxygen is
# not installed — the check is a bonus on developer machines, not a
# new container dependency.
if command -v doxygen > /dev/null 2>&1; then
    echo "==> doxygen docs check (serve + compute + prof headers, strict)"
    doxygen docs/Doxyfile-ci
    rm -rf build-docs-ci
else
    echo "==> doxygen not installed; skipping strict docs check"
fi

if [[ "${FASTGL_TSAN:-0}" == "1" ]]; then
    echo "==> ThreadSanitizer configuration (concurrency suite)"
    run_config build-tsan -DFASTGL_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
        -R 'BoundedQueue|ThreadPool|AsyncPipeline|Determinism|Serve|StageShutdown|ComputeKernels|Gather|FrequencyHashmap|FeaturePanel|MultiGpu|Partition|PeerTopology|OocStore|StorageLink|Prefetch|Profiler|Autoscale|ClosedLoop'
fi

# Gate one archived bench JSON. Every bench archive must parse as JSON
# — a truncated or crash-interleaved archive used to sail through the
# old pattern greps (grepping only for a failure marker passes
# vacuously on garbage) — and must contain the success marker; a
# present failure marker fails even if the bench's exit code ever
# regresses.
bench_gate() {
    local file="$1" required="$2" forbidden="${3:-}"
    if ! python3 -m json.tool "$file" > /dev/null; then
        echo "$file: malformed JSON archive" >&2
        return 1
    fi
    if ! grep -q "$required" "$file"; then
        echo "$file: success marker missing: $required" >&2
        return 1
    fi
    if [[ -n "$forbidden" ]] && grep -q "$forbidden" "$file"; then
        echo "$file: failure marker present: $forbidden" >&2
        return 1
    fi
}

if [[ "${FASTGL_NO_PERF:-0}" != "1" ]]; then
    # Perf smoke: Release build of the hot-path before/after benchmark,
    # archived as BENCH_hotpath.json. The step fails only when the
    # benchmark crashes or its legacy replicas diverge from the live
    # implementations (non-zero exit) — throughput numbers are recorded,
    # never gated, since CI machines are too noisy for thresholds.
    echo "==> hot-path perf smoke (Release)"
    if [[ ! -d build-perf-ci ]]; then
        cmake -B build-perf-ci -S . -DCMAKE_BUILD_TYPE=Release
    fi
    cmake --build build-perf-ci --target bench_ext_hotpath -j "$JOBS"
    ./build-perf-ci/bench/bench_ext_hotpath --smoke \
        | tee BENCH_hotpath.json
    bench_gate BENCH_hotpath.json 'identical": true' 'identical": false'

    # Serving smoke: sweep the online-inference server and archive the
    # latency/shedding table. The bench itself gates on its virtual-
    # clock invariants (batching+caches beat the baseline, shedding
    # engages under overload) — those are deterministic, so unlike
    # throughput they are safe to fail CI on. On top of that, check
    # the archive parses as JSON and every p99 came out finite.
    echo "==> serving smoke (Release)"
    cmake --build build-perf-ci --target bench_ext_serving -j "$JOBS"
    ./build-perf-ci/bench/bench_ext_serving --smoke \
        | tee BENCH_serving.json
    bench_gate BENCH_serving.json '"all_p99_finite": true'

    # Multi-model serving smoke: two tiers (GCN + GAT) under a mixed
    # paid/standard/best-effort trace, cold vs warm-seeded caches. The
    # bench gates on its own virtual-clock invariants (paid isolation
    # under overload, warmup lifting hit rate and tail, no tier
    # starved) and exits non-zero when any fails; all deterministic,
    # so safe to fail CI on.
    echo "==> multi-model serving smoke (Release)"
    cmake --build build-perf-ci --target bench_ext_serving_multimodel \
        -j "$JOBS"
    ./build-perf-ci/bench/bench_ext_serving_multimodel --smoke \
        | tee BENCH_serving_multimodel.json
    bench_gate BENCH_serving_multimodel.json '"ok": true'

    # Compute-kernel smoke: blocked GEMM + reverse-CSR aggregation vs
    # their in-bench legacy replicas. The bench exits non-zero if any
    # FNV witness diverges (the engine must be bit-identical to the
    # naive loops at every thread count); speedups are archived, not
    # gated. Runs in the primary configuration (repo-default build
    # type) because that is how the pre-engine loops actually shipped —
    # the honest before/after baseline. (-O3 additionally auto-
    # vectorizes the naive replicas, which narrows the measured gap
    # without reflecting any code that ever ran.)
    echo "==> compute-kernel smoke (primary configuration)"
    cmake --build build-ci --target bench_ext_compute -j "$JOBS"
    ./build-ci/bench/bench_ext_compute --smoke \
        | tee BENCH_compute.json
    bench_gate BENCH_compute.json '"identical": true' \
        '"identical": false'

    # Feature-gather smoke: GatherEngine panels, the fused gather+cache
    # accounting pass, and the one-pass FrequencyHashmap presample vs
    # their in-bench legacy replicas (the verbatim pre-engine staging
    # paths). The bench exits non-zero when any FNV witness diverges —
    # the fast paths must be bit-identical to the legacy loops — and
    # the explicit grep below keeps a witness mismatch fatal even if
    # the exit-code plumbing ever regresses. Speedups are archived,
    # not gated. Primary configuration for the same reason as the
    # compute smoke: that is how the legacy loops actually shipped.
    echo "==> feature-gather smoke (primary configuration)"
    cmake --build build-ci --target bench_ext_gather -j "$JOBS"
    ./build-ci/bench/bench_ext_gather --smoke \
        | tee BENCH_gather.json
    bench_gate BENCH_gather.json '"identical": true' \
        '"identical": false'

    # Multi-GPU smoke: the N-device timeline grid (symmetric vs
    # factored vs factored+switcher) and the sharded-vs-replicated
    # serving grid. The bench is divergence-fatal — it re-runs every
    # timeline config and sweeps serving worker counts, exiting
    # non-zero on any fingerprint mismatch — and gates its virtual-
    # clock claims (single-GPU exactness vs the legacy scheduler, the
    # switcher paying off when sample-bound, sharding beating
    # replication on hit rate). All deterministic, safe to fail CI on.
    echo "==> multi-GPU smoke (Release)"
    cmake --build build-perf-ci --target bench_ext_multigpu -j "$JOBS"
    ./build-perf-ci/bench/bench_ext_multigpu --smoke \
        | tee BENCH_multigpu.json
    bench_gate BENCH_multigpu.json '"ok": true'

    # Out-of-core store smoke: the tiered-feature-store grid (host-DRAM
    # fraction x prefetch x layout) against an in-memory baseline. The
    # bench is divergence-fatal (every config replays, one sweeps
    # thread widths) and gates its virtual-clock claims: losses
    # bit-identical to in-memory, prefetch cutting the demand stall,
    # the partition-ordered relayout paying off, and a full host-DRAM
    # budget reproducing the in-memory epoch exactly. Deterministic,
    # safe to fail CI on.
    echo "==> out-of-core store smoke (Release)"
    cmake --build build-perf-ci --target bench_ext_oocstore -j "$JOBS"
    ./build-perf-ci/bench/bench_ext_oocstore --smoke \
        | tee BENCH_oocstore.json
    bench_gate BENCH_oocstore.json '"ok": true'

    # Traffic-realism smoke: the per-stage profiler, closed-loop client
    # pool, flash-crowd trace, and sampler-pool autoscaler. The bench
    # is divergence-fatal (every configuration replays, the closed-loop
    # and autoscaled runs sweep host worker counts) and gates its
    # virtual-clock claims: profiling leaves fingerprints bit-identical
    # at 1/4/8 workers, the closed loop sheds less than the open loop
    # at matched offered load, the autoscaler cuts flash-crowd SLO
    # misses vs the fixed minimum pool, and paid-tier isolation holds
    # throughout. Deterministic, safe to fail CI on.
    echo "==> traffic-realism smoke (Release)"
    cmake --build build-perf-ci --target bench_ext_traffic -j "$JOBS"
    ./build-perf-ci/bench/bench_ext_traffic --smoke \
        | tee BENCH_traffic.json
    bench_gate BENCH_traffic.json '"ok": true'
fi

echo "==> CI OK"
