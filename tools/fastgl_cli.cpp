/**
 * @file
 * fastgl_cli — command-line driver for the FastGL library.
 *
 * Modes:
 *   model  — run modelled epochs under a framework preset and print the
 *            phase breakdown (the library's main use).
 *   train  — run real numeric training and print the loss curve.
 *   serve  — run online inference serving over a synthetic Poisson
 *            trace and print latency/shedding statistics.
 *   info   — print dataset replica statistics.
 *
 * Examples:
 *   fastgl_cli model --dataset products --framework fastgl --gpus 4
 *   fastgl_cli model --dataset papers100m --framework dgl --epochs 3
 *   fastgl_cli train --dataset reddit --model gin --epochs 5
 *   fastgl_cli serve --dataset products --rate 20000 --requests 2048
 *   fastgl_cli info  --dataset mag
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "fastgl.h"

namespace {

using namespace fastgl;

/**
 * Tiny argv parser after the mode word: --key value pairs, plus bare
 * --flags (no value, e.g. --help) stored as "1".
 */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 2; i < argc; ++i) {
            if (std::strncmp(argv[i], "--", 2) != 0)
                continue;
            const bool has_value =
                i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0;
            values_[argv[i] + 2] = has_value ? argv[i + 1] : "1";
            if (has_value)
                ++i;
        }
    }

    bool has(const std::string &key) const
    {
        return values_.count(key) != 0;
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    int64_t
    get_int(const std::string &key, int64_t fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : std::stoll(it->second);
    }

  private:
    std::map<std::string, std::string> values_;
};

graph::DatasetId
parse_dataset(const std::string &name)
{
    if (name == "reddit" || name == "rd")
        return graph::DatasetId::kReddit;
    if (name == "products" || name == "pr")
        return graph::DatasetId::kProducts;
    if (name == "mag")
        return graph::DatasetId::kMag;
    if (name == "igb")
        return graph::DatasetId::kIgbLarge;
    if (name == "papers100m" || name == "pa")
        return graph::DatasetId::kPapers100M;
    util::fatal("unknown dataset '" + name +
                "' (reddit|products|mag|igb|papers100m)");
}

core::Framework
parse_framework(const std::string &name)
{
    if (name == "pyg")
        return core::Framework::kPyG;
    if (name == "dgl")
        return core::Framework::kDgl;
    if (name == "gnnadvisor")
        return core::Framework::kGnnAdvisor;
    if (name == "gnnlab")
        return core::Framework::kGnnLab;
    if (name == "fastgl")
        return core::Framework::kFastGL;
    util::fatal("unknown framework '" + name +
                "' (pyg|dgl|gnnadvisor|gnnlab|fastgl)");
}

graph::PartitionerKind
parse_partitioner(const std::string &name)
{
    if (name == "bfs")
        return graph::PartitionerKind::kBfs;
    if (name == "ldg")
        return graph::PartitionerKind::kLdg;
    util::fatal("unknown partitioner '" + name + "' (bfs|ldg)");
}

/** Shared epoch/serve summary of partition-sharded cache traffic. */
void
print_partition_traffic(
    const std::vector<match::PartitionCacheCounters> &per_partition,
    const std::vector<sim::PeerLinkStats> &peer_links)
{
    for (size_t p = 0; p < per_partition.size(); ++p) {
        const match::PartitionCacheCounters &c = per_partition[p];
        if (c.lookups() == 0)
            continue;
        std::printf("  partition %zu: %lld local + %lld remote hits, "
                    "%lld misses (%.1f%% hit)\n",
                    p, static_cast<long long>(c.local_hits),
                    static_cast<long long>(c.remote_hits),
                    static_cast<long long>(c.misses),
                    100.0 * c.hit_rate());
    }
    for (const sim::PeerLinkStats &link : peer_links)
        std::printf("  link %d->%d (%s): %s in %lld transfers, %s\n",
                    link.src, link.dst,
                    sim::peer_link_kind_name(link.kind),
                    util::human_bytes(double(link.bytes)).c_str(),
                    static_cast<long long>(link.transfers),
                    util::human_seconds(link.seconds).c_str());
}

store::StorageKind
parse_storage(const std::string &name)
{
    if (name == "none")
        return store::StorageKind::kNone;
    if (name == "nvme")
        return store::StorageKind::kNvme;
    if (name == "ssd")
        return store::StorageKind::kSsd;
    util::fatal("unknown storage '" + name + "' (none|nvme|ssd)");
}

/**
 * Shared --storage / --host-mem-gb / --prefetch-depth / --relayout
 * parsing for the train and serve modes (out-of-core tier).
 */
store::TieredStoreOptions
parse_storage_opts(const Args &args, const graph::Dataset &ds)
{
    store::TieredStoreOptions storage;
    storage.storage = parse_storage(args.get("storage", "none"));
    const std::string gb = args.get("host-mem-gb", "");
    if (!gb.empty()) {
        const double bytes = std::stod(gb) * double(uint64_t(1) << 30);
        storage.host_mem_rows = std::max<int64_t>(
            0, int64_t(bytes / double(ds.features.row_bytes())));
    }
    storage.prefetch_depth =
        int(args.get_int("prefetch-depth", storage.prefetch_depth));
    storage.relayout = args.has("relayout");
    return storage;
}

/** Shared one-line out-of-core summary for train/serve output. */
void
print_store_summary(const store::TieredFeatureStore *ts)
{
    if (ts == nullptr || !ts->active())
        return;
    const store::StoreStats s = ts->stats();
    std::printf(
        "  storage %s%s: %lld/%lld rows in host DRAM | %lld storage "
        "rows -> %lld blocks (%.1f%% staged, %lld prefetch hits) | "
        "stall %s, hidden %s\n",
        store::storage_kind_name(ts->options().storage),
        ts->options().relayout ? "+relayout" : "",
        static_cast<long long>(ts->host_rows()),
        static_cast<long long>(ts->layout().num_nodes()),
        static_cast<long long>(s.storage_rows),
        static_cast<long long>(s.demand_blocks),
        100.0 * s.block_hit_rate(),
        static_cast<long long>(s.prefetch_hits),
        util::human_seconds(s.stall_seconds).c_str(),
        util::human_seconds(s.hidden_seconds).c_str());
}

compute::ModelType
parse_model(const std::string &name)
{
    if (name == "gcn")
        return compute::ModelType::kGcn;
    if (name == "gin")
        return compute::ModelType::kGin;
    if (name == "gat")
        return compute::ModelType::kGat;
    util::fatal("unknown model '" + name + "' (gcn|gin|gat)");
}

serve::ArrivalTrace
parse_trace(const std::string &name)
{
    if (name == "const" || name == "constant")
        return serve::ArrivalTrace::kConstant;
    if (name == "diurnal")
        return serve::ArrivalTrace::kDiurnal;
    if (name == "flash")
        return serve::ArrivalTrace::kFlashCrowd;
    util::fatal("unknown trace '" + name + "' (const|diurnal|flash)");
}

/** Write --profile-json output; false (with a message) on failure. */
bool
write_profile_json(const std::string &path,
                   const prof::ProfileReport &report)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write profile JSON to %s\n",
                     path.c_str());
        return false;
    }
    const std::string json = report.to_json();
    std::fputs(json.c_str(), f);
    std::fputs("\n", f);
    std::fclose(f);
    std::printf("  wrote profile JSON to %s\n", path.c_str());
    return true;
}

void
usage_model()
{
    std::printf(
        "usage: fastgl_cli model [--key value]...\n"
        "Run modelled training epochs under a framework preset and\n"
        "print the phase breakdown (sample / id-map / io / compute).\n"
        "  --dataset D      reddit|products|mag|igb|papers100m "
        "(products)\n"
        "  --framework F    pyg|dgl|gnnadvisor|gnnlab|fastgl (fastgl)\n"
        "  --model M        gcn|gin|gat (gcn)\n"
        "  --gpus N         modelled GPUs per machine (2)\n"
        "  --machines N     modelled machines (1)\n"
        "  --epochs N       epochs to run (1)\n"
        "  --batch N        batch size; 0 = dataset default (0)\n"
        "  --max-batches N  cap batches per epoch; 0 = all (0)\n"
        "  --scale-pct N    replica scale percent (100)\n"
        "  --seed N         RNG seed (1)\n");
}

void
usage_train()
{
    std::printf(
        "usage: fastgl_cli train [--key value]...\n"
        "Run real numeric training (forward/backward on the host\n"
        "kernel engine) and print the loss curve.\n"
        "  --dataset D          reddit|products|mag|igb|papers100m "
        "(products)\n"
        "  --model M            gcn|gin|gat (gcn)\n"
        "  --epochs N           epochs to run (3)\n"
        "  --batch N            batch size; 0 = dataset default (0)\n"
        "  --max-batches N      cap batches per epoch; 0 = all (10)\n"
        "  --lr-milli N         learning rate in thousandths (3)\n"
        "  --compute-threads N  kernel-engine width; results are\n"
        "                       bit-identical at any width (preset)\n"
        "  --gpus N             modelled devices for partition-sharded\n"
        "                       cache accounting; 1 = off (1)\n"
        "  --partitioner P      bfs|ldg shard partitioner (ldg)\n"
        "  --cache-pct N        feature-cache capacity percent; the\n"
        "                       shards split this budget (0, or 20\n"
        "                       when --gpus > 1)\n"
        "  --scale-pct N        replica scale percent (50)\n"
        "  --save-warmup PATH   record per-node access frequencies\n"
        "                       over all epochs and write a serving\n"
        "                       warmup trace (see serve --warmup)\n"
        "  --storage S          none|nvme|ssd out-of-core tier for\n"
        "                       rows beyond the host-DRAM budget\n"
        "                       (none)\n"
        "  --host-mem-gb G      host-DRAM feature budget in GiB;\n"
        "                       fractions allowed (all rows)\n"
        "  --prefetch-depth N   batches sampled ahead so their\n"
        "                       storage blocks prefetch; 0 = demand\n"
        "                       reads only (2)\n"
        "  --relayout           store features partition-major in BFS\n"
        "                       order instead of node-ID order (off)\n"
        "  --profile            print the per-stage profiler table\n"
        "                       after the final epoch; losses are\n"
        "                       bit-identical on or off (off)\n"
        "  --profile-json PATH  write the final epoch's profile as\n"
        "                       JSON (implies --profile)\n"
        "  --seed N             RNG seed (3407)\n");
}

void
usage_serve()
{
    std::printf(
        "usage: fastgl_cli serve [--key value]...\n"
        "Serve a synthetic inference trace on the virtual clock and\n"
        "print latency / shedding / cache statistics.\n"
        "workload:\n"
        "  --dataset D        reddit|products|mag|igb|papers100m "
        "(products)\n"
        "  --rate RPS         offered load, requests/s (20000)\n"
        "  --requests N       trace length (2048)\n"
        "  --trace T          const|diurnal|flash arrival-rate curve\n"
        "                     (const)\n"
        "  --clients N        closed-loop client pool: N clients,\n"
        "                     each with at most one request in\n"
        "                     flight; 0 = open-loop Poisson (0)\n"
        "  --think-us N       mean closed-loop think time between\n"
        "                     response and next request, us (2000)\n"
        "  --slo-ms N         per-request deadline, ms (20)\n"
        "  --targets N        target nodes per request (1)\n"
        "  --mix-paid PCT     share of paid requests (0)\n"
        "  --mix-std PCT      share of standard requests (100)\n"
        "  --mix-be PCT       share of best-effort requests (0)\n"
        "server:\n"
        "  --model M          gcn|gin|gat for tier 0 (gcn)\n"
        "  --model2 M         add a second model tier (off)\n"
        "  --model2-share PCT traffic routed to tier 1 (30)\n"
        "  --batch-max N      close batch at N requests (32)\n"
        "  --wait-us N        close batch after N us wait (2000)\n"
        "  --max-pending N    admission queue bound; <=0 off (64)\n"
        "  --drr-quantum-us N DRR quantum between tiers, us (1000)\n"
        "  --cache-pct N      feature-cache capacity percent (20)\n"
        "  --embed-rows N     embedding-cache rows; -1 = auto (-1)\n"
        "  --warmup PATH      seed caches from a warmup trace\n"
        "                     recorded by train --save-warmup (off)\n"
        "  --threads N        host sampler threads; no effect on\n"
        "                     modelled results (4)\n"
        "  --samplers N       modelled sampler-worker pool; 0 keeps\n"
        "                     sampling charged inside batch service\n"
        "                     as in earlier releases (0)\n"
        "  --autoscale        autoscale the sampler pool on profiled\n"
        "                     queue waits (off)\n"
        "  --autoscale-min N  pool lower bound and start size (1)\n"
        "  --autoscale-max N  pool upper bound (8)\n"
        "  --autoscale-cache-pct N\n"
        "                     embedding-cache budget at max workers,\n"
        "                     percent of the base budget (100)\n"
        "  --gpus N           modelled devices; caches shard along a\n"
        "                     graph partitioning and batches route to\n"
        "                     their partition's owner (1)\n"
        "  --partitioner P    bfs|ldg shard partitioner (ldg)\n"
        "  --shard S          sharded|replicated cache layout "
        "(sharded)\n"
        "storage:\n"
        "  --storage S        none|nvme|ssd out-of-core tier for rows\n"
        "                     beyond the host-DRAM budget (none)\n"
        "  --host-mem-gb G    host-DRAM feature budget in GiB;\n"
        "                     fractions allowed (all rows)\n"
        "  --prefetch-depth N prefetch window depth in admitted\n"
        "                     requests; 0 = demand reads only (2)\n"
        "  --relayout         store features partition-major in BFS\n"
        "                     order instead of node-ID order (off)\n"
        "compute:\n"
        "  --logits 0|1       run the real forward per batch and\n"
        "                     fill predictions (0)\n"
        "  --compute-threads N kernel-engine width for --logits 1;\n"
        "                     bit-identical at any width (1)\n"
        "misc:\n"
        "  --profile          print the per-stage profiler table;\n"
        "                     fingerprints are bit-identical with\n"
        "                     profiling on or off (off)\n"
        "  --profile-json PATH write the profile as JSON (implies\n"
        "                     --profile)\n"
        "  --scale-pct N      replica scale percent (100)\n"
        "  --seed N           RNG seed (1)\n");
}

void
usage_info()
{
    std::printf(
        "usage: fastgl_cli info [--key value]...\n"
        "Print dataset replica statistics.\n"
        "  --dataset D  reddit|products|mag|igb|papers100m "
        "(products)\n");
}

int
run_model(const Args &args)
{
    graph::ReplicaOptions ropts;
    ropts.materialize_features = false;
    ropts.size_factor = double(args.get_int("scale-pct", 100)) / 100.0;
    const graph::Dataset ds = graph::load_replica(
        parse_dataset(args.get("dataset", "products")), ropts);

    core::PipelineOptions opts;
    opts.fw = core::framework_preset(
        parse_framework(args.get("framework", "fastgl")));
    opts.num_gpus = int(args.get_int("gpus", 2));
    opts.num_machines = int(args.get_int("machines", 1));
    opts.model.type = parse_model(args.get("model", "gcn"));
    opts.batch_size = args.get_int("batch", 0);
    opts.max_batches = args.get_int("max-batches", 0);
    opts.seed = uint64_t(args.get_int("seed", 1));
    core::Pipeline pipeline(ds, opts);

    const int epochs = int(args.get_int("epochs", 1));
    std::printf("%s on %s, %d GPU(s) x %d machine(s), model %s\n",
                opts.fw.name.c_str(), ds.name.c_str(), opts.num_gpus,
                opts.num_machines,
                compute::model_type_name(opts.model.type));
    for (int e = 0; e < epochs; ++e) {
        const core::EpochResult r = pipeline.run_epoch();
        std::printf(
            "epoch %d: %s | sample %s, id-map %s, io %s, compute %s | "
            "%lld batches, reuse %.1f%%, %s over PCIe\n",
            e, util::human_seconds(r.epoch_seconds).c_str(),
            util::human_seconds(r.phases.sample).c_str(),
            util::human_seconds(r.phases.id_map).c_str(),
            util::human_seconds(r.phases.io).c_str(),
            util::human_seconds(r.phases.compute).c_str(),
            static_cast<long long>(r.batches),
            100.0 * r.reuse_fraction(),
            util::human_bytes(double(r.bytes_loaded)).c_str());
    }
    return 0;
}

int
run_train(const Args &args)
{
    graph::ReplicaOptions ropts;
    ropts.size_factor = double(args.get_int("scale-pct", 50)) / 100.0;
    const graph::Dataset ds = graph::load_replica(
        parse_dataset(args.get("dataset", "products")), ropts);

    core::TrainerOptions opts;
    opts.model.type = parse_model(args.get("model", "gcn"));
    opts.batch_size = args.get_int("batch", 0);
    opts.max_batches = args.get_int("max-batches", 10);
    opts.learning_rate =
        float(args.get_int("lr-milli", 3)) / 1000.0f;
    // The FastGL preset's host-kernel width (bit-identical results at
    // any value); override with --compute-threads.
    opts.compute_threads = int(args.get_int(
        "compute-threads",
        core::framework_preset(core::Framework::kFastGL)
            .compute_threads));
    opts.seed = uint64_t(args.get_int("seed", 3407));
    opts.num_gpus = int(args.get_int("gpus", 1));
    opts.partitioner = parse_partitioner(args.get("partitioner", "ldg"));
    // The shards need a cache budget: default one in when --gpus asks
    // for the accounting pass but no --cache-pct was given.
    opts.feature_cache_ratio =
        double(args.get_int("cache-pct", opts.num_gpus > 1 ? 20 : 0)) /
        100.0;
    opts.storage = parse_storage_opts(args, ds);
    const std::string profile_json = args.get("profile-json", "");
    opts.profile = args.has("profile") || !profile_json.empty();
    const std::string warmup_path = args.get("save-warmup", "");
    opts.record_node_frequencies = !warmup_path.empty();
    core::Trainer trainer(ds, opts);

    const int epochs = int(args.get_int("epochs", 3));
    std::printf("training %s on %s (%d epochs%s)\n",
                compute::model_type_name(opts.model.type),
                ds.name.c_str(), epochs,
                opts.num_gpus > 1 ? ", sharded cache accounting" : "");
    match::WarmupTrace warmup;
    prof::ProfileReport last_profile;
    for (int e = 0; e < epochs; ++e) {
        const auto stats = trainer.train_epoch();
        if (opts.profile)
            last_profile = stats.profile;
        std::printf("epoch %d: loss %.4f, accuracy %.3f | host compute "
                    "%.3fs (%.1f GFLOP/s gemm, %.0f B/edge agg), "
                    "modelled GPU %.3fs\n",
                    e, stats.mean_loss, stats.mean_accuracy,
                    stats.measured_compute.seconds(),
                    stats.measured_compute.gemm_gflops(),
                    stats.measured_compute.agg_bytes_per_edge(),
                    stats.modelled_compute_seconds);
        if (stats.num_gpus > 1) {
            std::printf("  %d modelled devices (%s): %lld local + "
                        "%lld remote hits, %lld misses (%.1f%% hit)\n",
                        stats.num_gpus,
                        graph::partitioner_name(opts.partitioner),
                        static_cast<long long>(
                            stats.shard_totals.local_hits),
                        static_cast<long long>(
                            stats.shard_totals.remote_hits),
                        static_cast<long long>(
                            stats.shard_totals.misses),
                        100.0 * stats.shard_totals.hit_rate());
            print_partition_traffic(stats.per_partition,
                                    stats.peer_links);
        }
        if (trainer.tiered_store() != nullptr &&
            trainer.tiered_store()->active()) {
            print_store_summary(trainer.tiered_store());
            std::printf("  modelled epoch %s (compute %s + storage "
                        "stall %s)\n",
                        util::human_seconds(stats.modelled_epoch_seconds)
                            .c_str(),
                        util::human_seconds(
                            stats.modelled_compute_seconds)
                            .c_str(),
                        util::human_seconds(stats.storage_stall_seconds)
                            .c_str());
        }
        if (opts.record_node_frequencies) {
            if (warmup.frequencies.empty())
                warmup.frequencies = stats.node_frequencies;
            else
                for (size_t i = 0; i < warmup.frequencies.size(); ++i)
                    warmup.frequencies[i] += stats.node_frequencies[i];
        }
    }
    if (opts.profile) {
        std::printf("%s", last_profile.to_table().c_str());
        if (!profile_json.empty() &&
            !write_profile_json(profile_json, last_profile))
            return 1;
    }
    if (!warmup_path.empty()) {
        if (match::save_warmup_trace(warmup_path, warmup))
            std::printf("saved warmup trace (%zu nodes) to %s — replay "
                        "with: serve --warmup %s --scale-pct %lld\n",
                        warmup.frequencies.size(), warmup_path.c_str(),
                        warmup_path.c_str(),
                        static_cast<long long>(
                            args.get_int("scale-pct", 50)));
        else
            return 1;
    }
    return 0;
}

int
run_serve(const Args &args)
{
    graph::ReplicaOptions ropts;
    ropts.materialize_features = false;
    ropts.size_factor = double(args.get_int("scale-pct", 100)) / 100.0;
    const graph::Dataset ds = graph::load_replica(
        parse_dataset(args.get("dataset", "products")), ropts);

    serve::ServerOptions sopts;
    sopts.worker_threads = int(args.get_int("threads", 4));
    sopts.model.type = parse_model(args.get("model", "gcn"));
    sopts.batcher.max_batch = int(args.get_int("batch-max", 32));
    sopts.batcher.max_wait =
        double(args.get_int("wait-us", 2000)) / 1e6;
    sopts.admission.max_pending = args.get_int("max-pending", 64);
    sopts.drr_quantum =
        double(args.get_int("drr-quantum-us", 1000)) / 1e6;
    sopts.feature_cache_ratio =
        double(args.get_int("cache-pct", 20)) / 100.0;
    sopts.embedding.capacity_rows = args.get_int("embed-rows", -1);
    sopts.compute_logits = args.get_int("logits", 0) != 0;
    sopts.compute_threads = int(args.get_int("compute-threads", 1));
    sopts.num_gpus = int(args.get_int("gpus", 1));
    sopts.partitioner =
        parse_partitioner(args.get("partitioner", "ldg"));
    const std::string shard = args.get("shard", "sharded");
    if (shard == "replicated")
        sopts.shard_mode = match::ShardMode::kReplicated;
    else if (shard != "sharded")
        util::fatal("unknown shard mode '" + shard +
                    "' (sharded|replicated)");
    sopts.seed = uint64_t(args.get_int("seed", 1));
    sopts.storage = parse_storage_opts(args, ds);
    const std::string profile_json = args.get("profile-json", "");
    sopts.profile = args.has("profile") || !profile_json.empty();
    sopts.modelled_samplers = int(args.get_int("samplers", 0));
    if (args.has("autoscale")) {
        sopts.autoscale.enabled = true;
        sopts.autoscale.min_workers =
            int(args.get_int("autoscale-min", 1));
        sopts.autoscale.max_workers =
            int(args.get_int("autoscale-max", 8));
        sopts.autoscale.cache_grow =
            double(args.get_int("autoscale-cache-pct", 100)) / 100.0;
    }

    // --model2 hosts a second tier behind the same front door; both
    // tiers inherit the shared batcher/embedding settings.
    const std::string model2 = args.get("model2", "");
    serve::LoadGeneratorOptions lopts;
    if (!model2.empty()) {
        serve::ModelTier tier;
        tier.name = args.get("model", "gcn");
        tier.model.type = sopts.model.type;
        tier.batcher = sopts.batcher;
        tier.embedding = sopts.embedding;
        sopts.models.push_back(tier);
        tier.name = model2;
        tier.model.type = parse_model(model2);
        sopts.models.push_back(tier);
        const double share = std::clamp(
            double(args.get_int("model2-share", 30)) / 100.0, 0.0, 1.0);
        lopts.model_mix = {1.0 - share, share};
    }

    // Warmup trace (recorded by `train --save-warmup`): seeds the
    // feature-cache ranking and every tier's embedding cache.
    const std::string warmup_path = args.get("warmup", "");
    if (!warmup_path.empty()) {
        sopts.warmup = match::load_warmup_trace(warmup_path);
        if (sopts.warmup.empty())
            return 1;
    }
    serve::Server server(ds, sopts);

    lopts.rate_rps = double(args.get_int("rate", 20000));
    lopts.trace = parse_trace(args.get("trace", "const"));
    lopts.num_requests = args.get_int("requests", 2048);
    lopts.targets_per_request = int(args.get_int("targets", 1));
    lopts.slo_deadline =
        double(args.get_int("slo-ms", 20)) / 1e3;
    lopts.class_mix = {double(args.get_int("mix-paid", 0)),
                       double(args.get_int("mix-std", 100)),
                       double(args.get_int("mix-be", 0))};
    lopts.seed = sopts.seed + 1;

    // --clients N turns the run into a closed loop: the trace length
    // is rounded down to a whole number of requests per client.
    serve::ClosedLoopOptions copts;
    copts.num_clients = int(args.get_int("clients", 0));
    if (copts.num_clients > 0) {
        copts.requests_per_client = std::max<int64_t>(
            1, lopts.num_requests / copts.num_clients);
        copts.think_time = double(args.get_int("think-us", 2000)) / 1e6;
        lopts.num_requests =
            copts.requests_per_client * copts.num_clients;
    }
    serve::LoadGenerator gen(server.popularity(), lopts);

    if (copts.num_clients > 0)
        std::printf("serving %s: %lld requests from %d closed-loop "
                    "client(s), think %s, SLO %s, batch<=%d/%s, "
                    "%d worker thread(s)%s\n",
                    ds.name.c_str(),
                    static_cast<long long>(lopts.num_requests),
                    copts.num_clients,
                    util::human_seconds(copts.think_time).c_str(),
                    util::human_seconds(lopts.slo_deadline).c_str(),
                    sopts.batcher.max_batch,
                    util::human_seconds(sopts.batcher.max_wait).c_str(),
                    sopts.worker_threads,
                    server.warmed() ? ", warmed caches" : "");
    else
        std::printf("serving %s: %lld requests at %.0f rps (%s "
                    "trace), SLO %s, batch<=%d/%s, %d worker "
                    "thread(s)%s\n",
                    ds.name.c_str(),
                    static_cast<long long>(lopts.num_requests),
                    lopts.rate_rps,
                    serve::arrival_trace_name(lopts.trace),
                    util::human_seconds(lopts.slo_deadline).c_str(),
                    sopts.batcher.max_batch,
                    util::human_seconds(sopts.batcher.max_wait).c_str(),
                    sopts.worker_threads,
                    server.warmed() ? ", warmed caches" : "");
    if (copts.num_clients > 0)
        server.serve_closed(gen.generate_closed(copts));
    else
        server.serve(gen.generate());
    const serve::ServingStats &st = server.last_stats();
    std::printf(
        "  served %lld/%lld (%lld late, %lld embedding hits) | "
        "shed %lld queue + %lld deadline (%.1f%%)\n",
        static_cast<long long>(st.served),
        static_cast<long long>(st.offered),
        static_cast<long long>(st.served_late),
        static_cast<long long>(st.embedding_hits),
        static_cast<long long>(st.shed_queue),
        static_cast<long long>(st.dropped_deadline),
        100.0 * st.shed_rate);
    std::printf("  latency p50 %s, p95 %s, p99 %s, mean %s\n",
                util::human_seconds(st.p50_latency).c_str(),
                util::human_seconds(st.p95_latency).c_str(),
                util::human_seconds(st.p99_latency).c_str(),
                util::human_seconds(st.mean_latency).c_str());
    std::printf("  throughput %.1f rps (goodput %.1f) over %s | "
                "%lld batches, mean size %.1f, GPU busy %.1f%%\n",
                st.throughput_rps, st.goodput_rps,
                util::human_seconds(st.makespan).c_str(),
                static_cast<long long>(st.batches),
                st.mean_batch_size, 100.0 * st.gpu_utilization);
    std::printf("  feature cache %.1f%% hit (%lld rows), embedding "
                "cache %.1f%% hit (%lld rows)\n",
                100.0 * st.feature_hit_rate,
                static_cast<long long>(server.feature_cache_rows()),
                100.0 * st.embedding_hit_rate,
                static_cast<long long>(server.embedding_cache_rows()));
    if (st.warmed)
        std::printf("  warmup: %lld embedding rows pre-seeded\n",
                    static_cast<long long>(st.warmed_rows));
    print_store_summary(server.tiered_store());
    if (st.num_gpus > 1) {
        std::printf("  %d modelled devices (%s, %s): %lld remote "
                    "feature hits, %lld remote embedding hits\n",
                    st.num_gpus,
                    graph::partitioner_name(sopts.partitioner),
                    match::shard_mode_name(sopts.shard_mode),
                    static_cast<long long>(st.feature_remote_hits),
                    static_cast<long long>(st.embedding_remote_hits));
        print_partition_traffic(st.per_partition, st.peer_links);
    }
    for (size_t c = 0; c < serve::kNumPriorityClasses; ++c) {
        const serve::PriorityClassStats &cls = st.per_class[c];
        if (cls.offered == 0)
            continue;
        std::printf("  class %-11s %lld offered, %lld served "
                    "(%lld late), shed %lld+%lld (%.1f%%), "
                    "p50 %s, p99 %s\n",
                    serve::priority_name(
                        static_cast<serve::Priority>(c)),
                    static_cast<long long>(cls.offered),
                    static_cast<long long>(cls.served),
                    static_cast<long long>(cls.served_late),
                    static_cast<long long>(cls.shed_queue),
                    static_cast<long long>(cls.dropped_deadline),
                    100.0 * cls.shed_rate,
                    util::human_seconds(cls.p50_latency).c_str(),
                    util::human_seconds(cls.p99_latency).c_str());
    }
    if (server.num_models() > 1) {
        for (const serve::ModelTierStats &tier : st.per_model)
            std::printf("  tier %-8s %lld offered, %lld served, "
                        "%lld batches (mean %.1f), device %s, "
                        "embed %.1f%% hit, %lld warmed rows\n",
                        tier.name.c_str(),
                        static_cast<long long>(tier.offered),
                        static_cast<long long>(tier.served),
                        static_cast<long long>(tier.batches),
                        tier.mean_batch_size,
                        util::human_seconds(tier.gpu_busy_seconds)
                            .c_str(),
                        100.0 * tier.embedding_hit_rate,
                        static_cast<long long>(tier.warmed_rows));
    }
    if (sopts.compute_logits)
        std::printf("  compute: %lld real forwards in %s host "
                    "(%.1f GFLOP/s gemm)\n",
                    static_cast<long long>(st.compute_batches),
                    util::human_seconds(st.compute_seconds).c_str(),
                    st.compute_gflops);
    if (st.modelled_samplers > 0 && !st.autoscale.enabled)
        std::printf("  sampler pool: %d modelled worker(s)\n",
                    st.modelled_samplers);
    if (st.autoscale.enabled) {
        const serve::AutoscaleReport &as = st.autoscale;
        std::printf("  autoscale: %d -> %d worker(s) in [%d, %d], "
                    "%zu change(s)\n",
                    st.modelled_samplers, as.final_workers,
                    as.min_workers, as.max_workers, as.events.size());
        if (as.first_pressure_at >= 0.0)
            std::printf("    first pressure at %s, scale-up lag %s\n",
                        util::human_seconds(as.first_pressure_at)
                            .c_str(),
                        util::human_seconds(as.scale_up_lag).c_str());
        for (const serve::AutoscaleEvent &ev : as.events)
            std::printf("    %s: %d -> %d (window wait %s, util "
                        "%.0f%%)\n",
                        util::human_seconds(ev.at).c_str(),
                        ev.workers_before, ev.workers_after,
                        util::human_seconds(ev.window_wait).c_str(),
                        100.0 * ev.window_util);
    }
    if (sopts.profile) {
        std::printf("%s", st.profile.to_table().c_str());
        if (!profile_json.empty() &&
            !write_profile_json(profile_json, st.profile))
            return 1;
    }
    std::printf("  fingerprint 0x%016llx (host wall %s)\n",
                static_cast<unsigned long long>(st.fingerprint),
                util::human_seconds(st.wall_seconds).c_str());
    return 0;
}

int
run_info(const Args &args)
{
    const graph::DatasetId id =
        parse_dataset(args.get("dataset", "products"));
    graph::ReplicaOptions ropts;
    ropts.materialize_features = false;
    const graph::Dataset ds = graph::load_replica(id, ropts);
    const graph::FullScaleSpec full = graph::full_scale_spec(id);

    std::printf("%s (replica of %s)\n", ds.name.c_str(),
                graph::dataset_short_name(id).c_str());
    std::printf("  replica: %lld nodes, %lld edges (avg deg %.1f, max "
                "%lld), batch %lld, %zu train nodes\n",
                static_cast<long long>(ds.graph.num_nodes()),
                static_cast<long long>(ds.graph.num_edges()),
                ds.graph.avg_degree(),
                static_cast<long long>(ds.graph.max_degree()),
                static_cast<long long>(ds.batch_size),
                ds.train_nodes.size());
    std::printf("  full scale: %lld nodes, %lld edges, %d-dim features, "
                "%d classes\n",
                static_cast<long long>(full.nodes),
                static_cast<long long>(full.edges), full.feature_dim,
                full.num_classes);
    std::printf("  scale factor: %.5f\n", ds.scale);
    return 0;
}

void
usage()
{
    std::printf(
        "usage: fastgl_cli <mode> [--key value]...\n"
        "modes (run `fastgl_cli <mode> --help` for every option):\n"
        "  model  modelled epochs under a framework preset\n"
        "  train  real numeric training (loss curve, warmup capture)\n"
        "  serve  online inference over a synthetic Poisson trace\n"
        "         (multi-model tiers, priority classes, warmup)\n"
        "  info   dataset replica statistics\n"
        "datasets: reddit products mag igb papers100m\n"
        "frameworks: pyg dgl gnnadvisor gnnlab fastgl\n"
        "models: gcn gin gat\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string mode = argv[1];
    const Args args(argc, argv);
    if (mode == "model")
        return args.has("help") ? (usage_model(), 0) : run_model(args);
    if (mode == "train")
        return args.has("help") ? (usage_train(), 0) : run_train(args);
    if (mode == "serve")
        return args.has("help") ? (usage_serve(), 0) : run_serve(args);
    if (mode == "info")
        return args.has("help") ? (usage_info(), 0) : run_info(args);
    usage();
    return mode == "--help" || mode == "help" ? 0 : 1;
}
