/**
 * @file
 * fastgl_cli — command-line driver for the FastGL library.
 *
 * Modes:
 *   model  — run modelled epochs under a framework preset and print the
 *            phase breakdown (the library's main use).
 *   train  — run real numeric training and print the loss curve.
 *   serve  — run online inference serving over a synthetic Poisson
 *            trace and print latency/shedding statistics.
 *   info   — print dataset replica statistics.
 *
 * Examples:
 *   fastgl_cli model --dataset products --framework fastgl --gpus 4
 *   fastgl_cli model --dataset papers100m --framework dgl --epochs 3
 *   fastgl_cli train --dataset reddit --model gin --epochs 5
 *   fastgl_cli serve --dataset products --rate 20000 --requests 2048
 *   fastgl_cli info  --dataset mag
 */
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "fastgl.h"

namespace {

using namespace fastgl;

/** Tiny argv parser: --key value pairs after the mode word. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 2; i + 1 < argc; i += 2) {
            if (std::strncmp(argv[i], "--", 2) == 0)
                values_[argv[i] + 2] = argv[i + 1];
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    int64_t
    get_int(const std::string &key, int64_t fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : std::stoll(it->second);
    }

  private:
    std::map<std::string, std::string> values_;
};

graph::DatasetId
parse_dataset(const std::string &name)
{
    if (name == "reddit" || name == "rd")
        return graph::DatasetId::kReddit;
    if (name == "products" || name == "pr")
        return graph::DatasetId::kProducts;
    if (name == "mag")
        return graph::DatasetId::kMag;
    if (name == "igb")
        return graph::DatasetId::kIgbLarge;
    if (name == "papers100m" || name == "pa")
        return graph::DatasetId::kPapers100M;
    util::fatal("unknown dataset '" + name +
                "' (reddit|products|mag|igb|papers100m)");
}

core::Framework
parse_framework(const std::string &name)
{
    if (name == "pyg")
        return core::Framework::kPyG;
    if (name == "dgl")
        return core::Framework::kDgl;
    if (name == "gnnadvisor")
        return core::Framework::kGnnAdvisor;
    if (name == "gnnlab")
        return core::Framework::kGnnLab;
    if (name == "fastgl")
        return core::Framework::kFastGL;
    util::fatal("unknown framework '" + name +
                "' (pyg|dgl|gnnadvisor|gnnlab|fastgl)");
}

compute::ModelType
parse_model(const std::string &name)
{
    if (name == "gcn")
        return compute::ModelType::kGcn;
    if (name == "gin")
        return compute::ModelType::kGin;
    if (name == "gat")
        return compute::ModelType::kGat;
    util::fatal("unknown model '" + name + "' (gcn|gin|gat)");
}

int
run_model(const Args &args)
{
    graph::ReplicaOptions ropts;
    ropts.materialize_features = false;
    ropts.size_factor = double(args.get_int("scale-pct", 100)) / 100.0;
    const graph::Dataset ds = graph::load_replica(
        parse_dataset(args.get("dataset", "products")), ropts);

    core::PipelineOptions opts;
    opts.fw = core::framework_preset(
        parse_framework(args.get("framework", "fastgl")));
    opts.num_gpus = int(args.get_int("gpus", 2));
    opts.num_machines = int(args.get_int("machines", 1));
    opts.model.type = parse_model(args.get("model", "gcn"));
    opts.batch_size = args.get_int("batch", 0);
    opts.max_batches = args.get_int("max-batches", 0);
    opts.seed = uint64_t(args.get_int("seed", 1));
    core::Pipeline pipeline(ds, opts);

    const int epochs = int(args.get_int("epochs", 1));
    std::printf("%s on %s, %d GPU(s) x %d machine(s), model %s\n",
                opts.fw.name.c_str(), ds.name.c_str(), opts.num_gpus,
                opts.num_machines,
                compute::model_type_name(opts.model.type));
    for (int e = 0; e < epochs; ++e) {
        const core::EpochResult r = pipeline.run_epoch();
        std::printf(
            "epoch %d: %s | sample %s, id-map %s, io %s, compute %s | "
            "%lld batches, reuse %.1f%%, %s over PCIe\n",
            e, util::human_seconds(r.epoch_seconds).c_str(),
            util::human_seconds(r.phases.sample).c_str(),
            util::human_seconds(r.phases.id_map).c_str(),
            util::human_seconds(r.phases.io).c_str(),
            util::human_seconds(r.phases.compute).c_str(),
            static_cast<long long>(r.batches),
            100.0 * r.reuse_fraction(),
            util::human_bytes(double(r.bytes_loaded)).c_str());
    }
    return 0;
}

int
run_train(const Args &args)
{
    graph::ReplicaOptions ropts;
    ropts.size_factor = double(args.get_int("scale-pct", 50)) / 100.0;
    const graph::Dataset ds = graph::load_replica(
        parse_dataset(args.get("dataset", "products")), ropts);

    core::TrainerOptions opts;
    opts.model.type = parse_model(args.get("model", "gcn"));
    opts.batch_size = args.get_int("batch", 0);
    opts.max_batches = args.get_int("max-batches", 10);
    opts.learning_rate =
        float(args.get_int("lr-milli", 3)) / 1000.0f;
    // The FastGL preset's host-kernel width (bit-identical results at
    // any value); override with --compute-threads.
    opts.compute_threads = int(args.get_int(
        "compute-threads",
        core::framework_preset(core::Framework::kFastGL)
            .compute_threads));
    opts.seed = uint64_t(args.get_int("seed", 3407));
    core::Trainer trainer(ds, opts);

    const int epochs = int(args.get_int("epochs", 3));
    std::printf("training %s on %s (%d epochs)\n",
                compute::model_type_name(opts.model.type),
                ds.name.c_str(), epochs);
    for (int e = 0; e < epochs; ++e) {
        const auto stats = trainer.train_epoch();
        std::printf("epoch %d: loss %.4f, accuracy %.3f | host compute "
                    "%.3fs (%.1f GFLOP/s gemm, %.0f B/edge agg), "
                    "modelled GPU %.3fs\n",
                    e, stats.mean_loss, stats.mean_accuracy,
                    stats.measured_compute.seconds(),
                    stats.measured_compute.gemm_gflops(),
                    stats.measured_compute.agg_bytes_per_edge(),
                    stats.modelled_compute_seconds);
    }
    return 0;
}

int
run_serve(const Args &args)
{
    graph::ReplicaOptions ropts;
    ropts.materialize_features = false;
    ropts.size_factor = double(args.get_int("scale-pct", 100)) / 100.0;
    const graph::Dataset ds = graph::load_replica(
        parse_dataset(args.get("dataset", "products")), ropts);

    serve::ServerOptions sopts;
    sopts.worker_threads = int(args.get_int("threads", 4));
    sopts.model.type = parse_model(args.get("model", "gcn"));
    sopts.batcher.max_batch = int(args.get_int("batch-max", 32));
    sopts.batcher.max_wait =
        double(args.get_int("wait-us", 2000)) / 1e6;
    sopts.admission.max_pending = args.get_int("max-pending", 64);
    sopts.feature_cache_ratio =
        double(args.get_int("cache-pct", 20)) / 100.0;
    sopts.embedding.capacity_rows = args.get_int("embed-rows", -1);
    sopts.seed = uint64_t(args.get_int("seed", 1));
    serve::Server server(ds, sopts);

    serve::LoadGeneratorOptions lopts;
    lopts.rate_rps = double(args.get_int("rate", 20000));
    lopts.num_requests = args.get_int("requests", 2048);
    lopts.slo_deadline =
        double(args.get_int("slo-ms", 20)) / 1e3;
    lopts.seed = sopts.seed + 1;
    serve::LoadGenerator gen(server.popularity(), lopts);

    std::printf("serving %s: %lld requests at %.0f rps, SLO %s, "
                "batch<=%d/%s, %d worker thread(s)\n",
                ds.name.c_str(),
                static_cast<long long>(lopts.num_requests),
                lopts.rate_rps,
                util::human_seconds(lopts.slo_deadline).c_str(),
                sopts.batcher.max_batch,
                util::human_seconds(sopts.batcher.max_wait).c_str(),
                sopts.worker_threads);
    server.serve(gen.generate());
    const serve::ServingStats &st = server.last_stats();
    std::printf(
        "  served %lld/%lld (%lld late, %lld embedding hits) | "
        "shed %lld queue + %lld deadline (%.1f%%)\n",
        static_cast<long long>(st.served),
        static_cast<long long>(st.offered),
        static_cast<long long>(st.served_late),
        static_cast<long long>(st.embedding_hits),
        static_cast<long long>(st.shed_queue),
        static_cast<long long>(st.dropped_deadline),
        100.0 * st.shed_rate);
    std::printf("  latency p50 %s, p95 %s, p99 %s, mean %s\n",
                util::human_seconds(st.p50_latency).c_str(),
                util::human_seconds(st.p95_latency).c_str(),
                util::human_seconds(st.p99_latency).c_str(),
                util::human_seconds(st.mean_latency).c_str());
    std::printf("  throughput %.1f rps (goodput %.1f) over %s | "
                "%lld batches, mean size %.1f, GPU busy %.1f%%\n",
                st.throughput_rps, st.goodput_rps,
                util::human_seconds(st.makespan).c_str(),
                static_cast<long long>(st.batches),
                st.mean_batch_size, 100.0 * st.gpu_utilization);
    std::printf("  feature cache %.1f%% hit (%lld rows), embedding "
                "cache %.1f%% hit (%lld rows)\n",
                100.0 * st.feature_hit_rate,
                static_cast<long long>(server.feature_cache_rows()),
                100.0 * st.embedding_hit_rate,
                static_cast<long long>(server.embedding_cache_rows()));
    std::printf("  fingerprint 0x%016llx (host wall %s)\n",
                static_cast<unsigned long long>(st.fingerprint),
                util::human_seconds(st.wall_seconds).c_str());
    return 0;
}

int
run_info(const Args &args)
{
    const graph::DatasetId id =
        parse_dataset(args.get("dataset", "products"));
    graph::ReplicaOptions ropts;
    ropts.materialize_features = false;
    const graph::Dataset ds = graph::load_replica(id, ropts);
    const graph::FullScaleSpec full = graph::full_scale_spec(id);

    std::printf("%s (replica of %s)\n", ds.name.c_str(),
                graph::dataset_short_name(id).c_str());
    std::printf("  replica: %lld nodes, %lld edges (avg deg %.1f, max "
                "%lld), batch %lld, %zu train nodes\n",
                static_cast<long long>(ds.graph.num_nodes()),
                static_cast<long long>(ds.graph.num_edges()),
                ds.graph.avg_degree(),
                static_cast<long long>(ds.graph.max_degree()),
                static_cast<long long>(ds.batch_size),
                ds.train_nodes.size());
    std::printf("  full scale: %lld nodes, %lld edges, %d-dim features, "
                "%d classes\n",
                static_cast<long long>(full.nodes),
                static_cast<long long>(full.edges), full.feature_dim,
                full.num_classes);
    std::printf("  scale factor: %.5f\n", ds.scale);
    return 0;
}

void
usage()
{
    std::printf(
        "usage: fastgl_cli <mode> [--key value]...\n"
        "modes:\n"
        "  model  --dataset D --framework F --model M --gpus N\n"
        "         --machines N --epochs N --batch N --max-batches N\n"
        "  train  --dataset D --model M --epochs N --lr-milli N\n"
        "  serve  --dataset D --rate RPS --requests N --slo-ms N\n"
        "         --batch-max N --wait-us N --max-pending N\n"
        "         --cache-pct N --embed-rows N --threads N\n"
        "  info   --dataset D\n"
        "datasets: reddit products mag igb papers100m\n"
        "frameworks: pyg dgl gnnadvisor gnnlab fastgl\n"
        "models: gcn gin gat\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string mode = argv[1];
    const Args args(argc, argv);
    if (mode == "model")
        return run_model(args);
    if (mode == "train")
        return run_train(args);
    if (mode == "serve")
        return run_serve(args);
    if (mode == "info")
        return run_info(args);
    usage();
    return 1;
}
